(* The verdict-server wire format: length-prefixed binary frames with a
   versioned magic and a CRC-32 trailer, payloads bit-packed with
   {!Ipds_core.Bitstream}.

   Frame layout (integers little-endian):

     0   4   magic "IPSV"
     4   1   protocol version
     5   1   frame tag
     6   4   payload length (u32)
     10  n   payload
     10+n 4  CRC-32 of bytes [0, 10+n)

   Decoding never raises: every way a frame can be damaged maps to a
   typed {!error_code}.  The magic and version are checked before the
   CRC so a stream from the wrong protocol gets a precise error; the
   CRC covers the header too, so a flipped bit anywhere in a frame —
   including its length field — is detected. *)

module Bs = Ipds_core.Bitstream
module Event = Ipds_machine.Event

let magic = "IPSV"
let version = 1
let header_bytes = 10
let trailer_bytes = 4
let default_max_frame = 4 * 1024 * 1024

type error_code =
  | Bad_magic
  | Bad_version
  | Bad_crc
  | Oversized
  | Truncated
  | Unknown_frame
  | Malformed
  | Bad_state
  | Unknown_artifact
  | Corrupt_artifact
  | Timeout
  | Server_error
  | Overloaded
  | Unavailable

type err = { code : error_code; detail : string }

let error_code_to_string = function
  | Bad_magic -> "bad-magic"
  | Bad_version -> "bad-version"
  | Bad_crc -> "bad-crc"
  | Oversized -> "oversized"
  | Truncated -> "truncated"
  | Unknown_frame -> "unknown-frame"
  | Malformed -> "malformed"
  | Bad_state -> "bad-state"
  | Unknown_artifact -> "unknown-artifact"
  | Corrupt_artifact -> "corrupt-artifact"
  | Timeout -> "timeout"
  | Server_error -> "server-error"
  | Overloaded -> "overloaded"
  | Unavailable -> "unavailable"

let error_code_to_int = function
  | Bad_magic -> 0
  | Bad_version -> 1
  | Bad_crc -> 2
  | Oversized -> 3
  | Truncated -> 4
  | Unknown_frame -> 5
  | Malformed -> 6
  | Bad_state -> 7
  | Unknown_artifact -> 8
  | Corrupt_artifact -> 9
  | Timeout -> 10
  | Server_error -> 11
  | Overloaded -> 12
  | Unavailable -> 13

let error_code_of_int = function
  | 0 -> Some Bad_magic
  | 1 -> Some Bad_version
  | 2 -> Some Bad_crc
  | 3 -> Some Oversized
  | 4 -> Some Truncated
  | 5 -> Some Unknown_frame
  | 6 -> Some Malformed
  | 7 -> Some Bad_state
  | 8 -> Some Unknown_artifact
  | 9 -> Some Corrupt_artifact
  | 10 -> Some Timeout
  | 11 -> Some Server_error
  | 12 -> Some Overloaded
  | 13 -> Some Unavailable
  | _ -> None

type summary = { total_events : int; total_branches : int; total_alarms : int }

type frame =
  | Load_key of string
  | Load_image of { name : string; image : string }
  | Begin_trace
  | Branch_events of Event.t list
  | End_trace
  | Fetch_artifact of string
  | Push_artifact of { key : string; image : string }
  | Loaded of { name : string; cached : bool }
  | Trace_started
  | Verdicts of Ipds_core.Checker.alarm list
  | Trace_summary of summary
  | Artifact_data of { key : string; image : string }
  | Artifact_pushed of { key : string; stored : bool }
  | Error of err

let verdict_to_string (a : Ipds_core.Checker.alarm) =
  Printf.sprintf "%s pc=%d expected=%c actual=%c seq=%d" a.fname a.branch_pc
    (Ipds_core.Status.to_char a.expected)
    (if a.actual_taken then 'T' else 'N')
    a.sequence

(* {2 Payload codec} *)

exception Malformed_payload of string

let fail m = raise (Malformed_payload m)

(* Full-width int: 31 low bits + 32 high bits reconstructs every 63-bit
   OCaml int exactly, negatives included (bit 62 is the sign bit). *)
let push_int w v =
  Bs.Writer.push w ~width:31 (v land 0x7FFF_FFFF);
  Bs.Writer.push w ~width:32 ((v lsr 31) land 0xFFFF_FFFF)

let pull_int r =
  let lo = Bs.Reader.pull r ~width:31 in
  let hi = Bs.Reader.pull r ~width:32 in
  (hi lsl 31) lor lo

let push_bool w b = Bs.Writer.push w ~width:1 (if b then 1 else 0)
let pull_bool r = Bs.Reader.pull r ~width:1 = 1

let push_string w s =
  let n = String.length s in
  push_int w n;
  String.iter (fun c -> Bs.Writer.push w ~width:8 (Char.code c)) s

(* String/list lengths are bounded by the decoder's effective
   [max_frame], not the compile-time default — a server started with a
   larger [--max-frame] must accept payloads that fill it.  The bound
   only rejects absurd lengths before allocation; genuine overruns of
   the actual payload still surface as [Malformed] via the reader. *)
let pull_string ~limit r =
  let n = pull_int r in
  if n < 0 || n > limit then fail "string length out of range";
  String.init n (fun _ -> Char.chr (Bs.Reader.pull r ~width:8))

let push_status w (s : Ipds_core.Status.t) =
  Bs.Writer.push w ~width:2
    (match s with
    | Ipds_core.Status.Taken -> 0
    | Ipds_core.Status.Not_taken -> 1
    | Ipds_core.Status.Unknown -> 2)

let pull_status r : Ipds_core.Status.t =
  match Bs.Reader.pull r ~width:2 with
  | 0 -> Ipds_core.Status.Taken
  | 1 -> Ipds_core.Status.Not_taken
  | 2 -> Ipds_core.Status.Unknown
  | _ -> fail "bad status"

let push_event w (e : Event.t) =
  push_string w e.Event.fname;
  push_int w e.Event.iid;
  push_int w e.Event.pc;
  let tag n = Bs.Writer.push w ~width:4 n in
  match e.Event.kind with
  | Event.Alu -> tag 0
  | Event.Load { addr } ->
      tag 1;
      push_int w addr
  | Event.Store { addr } ->
      tag 2;
      push_int w addr
  | Event.Branch { taken; target_pc } ->
      tag 3;
      push_bool w taken;
      push_int w target_pc
  | Event.Jump { target_pc } ->
      tag 4;
      push_int w target_pc
  | Event.Call { callee } ->
      tag 5;
      push_string w callee
  | Event.Ret -> tag 6
  | Event.Input_read -> tag 7
  | Event.Output_write v ->
      tag 8;
      push_int w v
  | Event.Fault_inject { skipped } ->
      tag 9;
      push_bool w skipped

let pull_event ~limit r : Event.t =
  let fname = pull_string ~limit r in
  let iid = pull_int r in
  let pc = pull_int r in
  let kind =
    match Bs.Reader.pull r ~width:4 with
    | 0 -> Event.Alu
    | 1 -> Event.Load { addr = pull_int r }
    | 2 -> Event.Store { addr = pull_int r }
    | 3 ->
        let taken = pull_bool r in
        let target_pc = pull_int r in
        Event.Branch { taken; target_pc }
    | 4 -> Event.Jump { target_pc = pull_int r }
    | 5 -> Event.Call { callee = pull_string ~limit r }
    | 6 -> Event.Ret
    | 7 -> Event.Input_read
    | 8 -> Event.Output_write (pull_int r)
    | 9 -> Event.Fault_inject { skipped = pull_bool r }
    | n -> fail (Printf.sprintf "bad event kind %d" n)
  in
  { Event.fname; iid; pc; kind }

let push_list w push xs =
  push_int w (List.length xs);
  List.iter (push w) xs

let pull_list ~limit r pull =
  let n = pull_int r in
  if n < 0 || n > limit then fail "list length out of range";
  List.init n (fun _ -> pull r)

let push_verdict w (a : Ipds_core.Checker.alarm) =
  push_string w a.fname;
  push_int w a.branch_pc;
  push_status w a.expected;
  push_bool w a.actual_taken;
  push_int w a.sequence

let pull_verdict ~limit r : Ipds_core.Checker.alarm =
  let fname = pull_string ~limit r in
  let branch_pc = pull_int r in
  let expected = pull_status r in
  let actual_taken = pull_bool r in
  let sequence = pull_int r in
  { fname; branch_pc; expected; actual_taken; sequence }

let tag_of_frame = function
  | Load_key _ -> 1
  | Load_image _ -> 2
  | Begin_trace -> 3
  | Branch_events _ -> 4
  | End_trace -> 5
  | Fetch_artifact _ -> 6
  | Push_artifact _ -> 7
  | Loaded _ -> 16
  | Trace_started -> 17
  | Verdicts _ -> 18
  | Trace_summary _ -> 19
  | Artifact_data _ -> 20
  | Artifact_pushed _ -> 21
  | Error _ -> 31

let encode_payload w = function
  | Load_key key -> push_string w key
  | Load_image { name; image } ->
      push_string w name;
      push_string w image
  | Begin_trace -> ()
  | Branch_events evs -> push_list w push_event evs
  | End_trace -> ()
  | Fetch_artifact key -> push_string w key
  | Push_artifact { key; image } ->
      push_string w key;
      push_string w image
  | Loaded { name; cached } ->
      push_string w name;
      push_bool w cached
  | Trace_started -> ()
  | Verdicts vs -> push_list w push_verdict vs
  | Trace_summary { total_events; total_branches; total_alarms } ->
      push_int w total_events;
      push_int w total_branches;
      push_int w total_alarms
  | Artifact_data { key; image } ->
      push_string w key;
      push_string w image
  | Artifact_pushed { key; stored } ->
      push_string w key;
      push_bool w stored
  | Error { code; detail } ->
      Bs.Writer.push w ~width:8 (error_code_to_int code);
      push_string w detail

let decode_payload ~limit tag r =
  match tag with
  | 1 -> Some (Load_key (pull_string ~limit r))
  | 2 ->
      let name = pull_string ~limit r in
      let image = pull_string ~limit r in
      Some (Load_image { name; image })
  | 3 -> Some Begin_trace
  | 4 -> Some (Branch_events (pull_list ~limit r (pull_event ~limit)))
  | 5 -> Some End_trace
  | 6 -> Some (Fetch_artifact (pull_string ~limit r))
  | 7 ->
      let key = pull_string ~limit r in
      let image = pull_string ~limit r in
      Some (Push_artifact { key; image })
  | 16 ->
      let name = pull_string ~limit r in
      let cached = pull_bool r in
      Some (Loaded { name; cached })
  | 17 -> Some Trace_started
  | 18 -> Some (Verdicts (pull_list ~limit r (pull_verdict ~limit)))
  | 19 ->
      let total_events = pull_int r in
      let total_branches = pull_int r in
      let total_alarms = pull_int r in
      Some (Trace_summary { total_events; total_branches; total_alarms })
  | 20 ->
      let key = pull_string ~limit r in
      let image = pull_string ~limit r in
      Some (Artifact_data { key; image })
  | 21 ->
      let key = pull_string ~limit r in
      let stored = pull_bool r in
      Some (Artifact_pushed { key; stored })
  | 31 -> (
      match error_code_of_int (Bs.Reader.pull r ~width:8) with
      | Some code -> Some (Error { code; detail = pull_string ~limit r })
      | None -> fail "bad error code")
  | _ -> None

(* {2 Frame codec} *)

let set_u32_le b pos v =
  for i = 0 to 3 do
    Bytes.set b (pos + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let get_u32_le b pos =
  let byte i = Char.code (Bytes.get b (pos + i)) in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

let encode_frame f =
  let w = Bs.Writer.create () in
  encode_payload w f;
  Bs.Writer.align_byte w;
  let payload = Bs.Writer.contents w in
  let plen = Bytes.length payload in
  let b = Bytes.create (header_bytes + plen + trailer_bytes) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr version);
  Bytes.set b 5 (Char.chr (tag_of_frame f));
  set_u32_le b 6 plen;
  Bytes.blit payload 0 b header_bytes plen;
  let crc =
    Int32.to_int (Ipds_artifact.Crc32.bytes b ~pos:0 ~len:(header_bytes + plen))
    land 0xFFFF_FFFF
  in
  set_u32_le b (header_bytes + plen) crc;
  b

type decoded =
  | Frame of frame * int  (** decoded frame, offset just past it *)
  | Need_more of int  (** at least this many bytes from [pos] required *)
  | Fail of err

(* Header + CRC validation without touching the payload, so an
   event-loop server can route a validated span to the streaming batch
   decoder (below) without materializing the frame. *)
type scanned =
  | Scan_frame of {
      tag : int;
      payload_pos : int;  (** absolute offset of the payload in [buf] *)
      payload_len : int;
      next : int;  (** absolute offset just past the frame *)
    }
  | Scan_need of int
  | Scan_fail of err

let magic_at buf pos =
  Bytes.get buf pos = 'I'
  && Bytes.get buf (pos + 1) = 'P'
  && Bytes.get buf (pos + 2) = 'S'
  && Bytes.get buf (pos + 3) = 'V'

let scan_at ?(max_frame = default_max_frame) buf ~pos ~len =
  if len < header_bytes then Scan_need header_bytes
  else if not (magic_at buf pos) then
    Scan_fail { code = Bad_magic; detail = "bad frame magic" }
  else if Char.code (Bytes.get buf (pos + 4)) <> version then
    Scan_fail
      {
        code = Bad_version;
        detail =
          Printf.sprintf "protocol version %d, expected %d"
            (Char.code (Bytes.get buf (pos + 4)))
            version;
      }
  else
    let tag = Char.code (Bytes.get buf (pos + 5)) in
    let plen = get_u32_le buf (pos + 6) in
    if plen > max_frame then
      Scan_fail
        {
          code = Oversized;
          detail = Printf.sprintf "payload of %d bytes exceeds limit %d" plen max_frame;
        }
    else if len < header_bytes + plen + trailer_bytes then
      Scan_need (header_bytes + plen + trailer_bytes)
    else
      let stored = get_u32_le buf (pos + header_bytes + plen) in
      let crc =
        Int32.to_int
          (Ipds_artifact.Crc32.bytes buf ~pos ~len:(header_bytes + plen))
        land 0xFFFF_FFFF
      in
      if stored <> crc then
        Scan_fail { code = Bad_crc; detail = "frame CRC mismatch" }
      else
        Scan_frame
          {
            tag;
            payload_pos = pos + header_bytes;
            payload_len = plen;
            next = pos + header_bytes + plen + trailer_bytes;
          }

(* Decode a CRC-validated payload span into a frame value. *)
let decode_span ?(max_frame = default_max_frame) tag buf ~pos ~len =
  let payload = Bytes.sub buf pos len in
  match decode_payload ~limit:max_frame tag (Bs.Reader.of_bytes payload) with
  | Some f -> Ok f
  | None ->
      Error
        { code = Unknown_frame; detail = Printf.sprintf "unknown frame tag %d" tag }
  | exception Malformed_payload m -> Error { code = Malformed; detail = m }
  | exception Invalid_argument _ ->
      Error { code = Malformed; detail = "payload ends prematurely" }

let decode_at ?max_frame buf ~pos ~len =
  match scan_at ?max_frame buf ~pos ~len with
  | Scan_need n -> Need_more n
  | Scan_fail e -> Fail e
  | Scan_frame { tag; payload_pos; payload_len; next } -> (
      match decode_span ?max_frame tag buf ~pos:payload_pos ~len:payload_len with
      | Ok f -> Frame (f, next)
      | Error e -> Fail e)

let decode_string ?max_frame s =
  let buf = Bytes.of_string s in
  let total = Bytes.length buf in
  let rec go pos acc =
    if pos = total then Ok (List.rev acc)
    else
      match decode_at ?max_frame buf ~pos ~len:(total - pos) with
      | Frame (f, next) -> go next (f :: acc)
      | Need_more _ ->
          Error { code = Truncated; detail = "stream ends mid-frame" }
      | Fail e -> Error e
  in
  go 0 []

(* {2 Streaming batch decode}

   [Branch_events] is the only frame on the serving hot path, and the
   generic codec pays for it three times over: {!Bs.Reader.pull} loops
   per *bit* (a div, a mod and a shift for every one of the ~300 bits an
   event occupies), [pull_list] materializes an [Event.t list], and
   every event allocates its [fname] string even though the checker
   never reads it for branch/ret events.  [iter_branch_events] walks the
   same bit layout with a byte-refilled accumulator (one shift-mask per
   field), skips [fname]/[iid] wholesale, and hands call/ret/branch
   straight to callbacks — no list, no event records, no strings except
   callee names.  The event-loop server feeds the checker through this;
   the wire format and its acceptance/rejection behaviour are identical
   to [decode_payload] (same bounds checks, same error details), which
   test_serve asserts differentially against random frames. *)

let branch_events_tag = 4

module Fast = struct
  exception Short

  type reader = {
    buf : Bytes.t;
    limit : int;  (** exclusive byte bound *)
    mutable pos : int;  (** next byte to fold into [acc] *)
    mutable acc : int;
    mutable bits : int;  (** valid low bits of [acc] *)
  }

  let make buf ~pos ~len = { buf; limit = pos + len; pos; acc = 0; bits = 0 }

  (* [width] <= 32, so [bits] stays < 40 and [acc] never nears bit 62. *)
  let pull r width =
    while r.bits < width do
      if r.pos >= r.limit then raise Short;
      r.acc <- r.acc lor (Char.code (Bytes.unsafe_get r.buf r.pos) lsl r.bits);
      r.bits <- r.bits + 8;
      r.pos <- r.pos + 1
    done;
    let v = r.acc land ((1 lsl width) - 1) in
    r.acc <- r.acc lsr width;
    r.bits <- r.bits - width;
    v

  let pull_int r =
    let lo = pull r 31 in
    let hi = pull r 32 in
    (hi lsl 31) lor lo

  let skip_chars r n =
    for _ = 1 to n do
      ignore (pull r 8)
    done

  let pull_chars r n =
    let b = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.unsafe_set b i (Char.unsafe_chr (pull r 8))
    done;
    Bytes.unsafe_to_string b
end

(* Walk one [Branch_events] payload span, dispatching checker-relevant
   events to the callbacks in order; returns the event count (all
   kinds).  Raises [Fast.Short] on a payload that ends prematurely and
   [Malformed_payload] exactly where [decode_payload] would. *)
let iter_branch_events ?(limit = default_max_frame) buf ~pos ~len ~on_call
    ~on_ret ~on_branch ~on_other =
  let r = Fast.make buf ~pos ~len in
  let n = Fast.pull_int r in
  if n < 0 || n > limit then fail "list length out of range";
  for _ = 1 to n do
    let fname_len = Fast.pull_int r in
    if fname_len < 0 || fname_len > limit then fail "string length out of range";
    Fast.skip_chars r fname_len;
    ignore (Fast.pull_int r) (* iid *);
    let pc = Fast.pull_int r in
    match Fast.pull r 4 with
    | 0 -> on_other () (* Alu *)
    | 1 | 2 ->
        ignore (Fast.pull_int r) (* Load/Store addr *);
        on_other ()
    | 3 ->
        let taken = Fast.pull r 1 = 1 in
        ignore (Fast.pull_int r) (* target_pc, unused by the checker *);
        on_branch ~pc ~taken
    | 4 ->
        ignore (Fast.pull_int r) (* Jump target *);
        on_other ()
    | 5 ->
        let clen = Fast.pull_int r in
        if clen < 0 || clen > limit then fail "string length out of range";
        on_call (Fast.pull_chars r clen)
    | 6 -> on_ret ()
    | 7 -> on_other () (* Input_read *)
    | 8 ->
        ignore (Fast.pull_int r) (* Output_write value *);
        on_other ()
    | 9 ->
        ignore (Fast.pull r 1) (* Fault_inject skipped *);
        on_other ()
    | k -> fail (Printf.sprintf "bad event kind %d" k)
  done;
  n

(* {2 Socket transport} *)

(* A peer that disconnects before reading our reply turns the next
   [Unix.write] into a SIGPIPE, whose default disposition kills the
   whole process — session-level [Unix_error EPIPE] handling only works
   once the signal is ignored.  Both [Server.start] and [Client.connect]
   call this; [Invalid_argument] covers platforms without SIGPIPE. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let rec write_all fd b pos len =
  if len > 0 then
    match Unix.write fd b pos len with
    | n -> write_all fd b (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b pos len

let output_frame fd f =
  let b = encode_frame f in
  write_all fd b 0 (Bytes.length b)

type reader = {
  fd : Unix.file_descr;
  max_frame : int;
  mutable buf : Bytes.t;
  mutable start : int;
  mutable len : int;
}

let reader ?(max_frame = default_max_frame) fd =
  { fd; max_frame; buf = Bytes.create 65536; start = 0; len = 0 }

type input = In_frame of frame | In_eof | In_error of err

let rec input_frame r =
  match decode_at ~max_frame:r.max_frame r.buf ~pos:r.start ~len:r.len with
  | Frame (f, next) ->
      r.len <- r.len - (next - r.start);
      r.start <- next;
      In_frame f
  | Fail e -> In_error e
  | Need_more need -> (
      (* Compact and grow so [need] bytes fit from [start]. *)
      if r.start > 0 && r.start + need > Bytes.length r.buf then begin
        Bytes.blit r.buf r.start r.buf 0 r.len;
        r.start <- 0
      end;
      if need > Bytes.length r.buf then begin
        let bigger = Bytes.create (max need (2 * Bytes.length r.buf)) in
        Bytes.blit r.buf r.start bigger 0 r.len;
        r.start <- 0;
        r.buf <- bigger
      end;
      let off = r.start + r.len in
      match Unix.read r.fd r.buf off (Bytes.length r.buf - off) with
      | 0 ->
          if r.len = 0 then In_eof
          else In_error { code = Truncated; detail = "connection closed mid-frame" }
      | n ->
          r.len <- r.len + n;
          input_frame r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> input_frame r
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          In_error { code = Timeout; detail = "session timed out waiting for a frame" }
      | exception Unix.Unix_error (e, _, _) ->
          In_error { code = Truncated; detail = Unix.error_message e })
