type task = unit -> unit

(* Pool activity depends on scheduling and domain count, so all of these
   are registered unstable: they surface in the runtime section of reports
   and never participate in the deterministic metrics object. *)
let m_maps = Ipds_obs.Registry.counter ~stable:false "pool.maps"
let m_tasks_worker = Ipds_obs.Registry.counter ~stable:false "pool.tasks.worker"
let m_tasks_caller = Ipds_obs.Registry.counter ~stable:false "pool.tasks.caller"
let m_jobs = Ipds_obs.Registry.gauge ~stable:false "pool.jobs"

type t = {
  mutex : Mutex.t;
  work : Condition.t;
      (* signalled on: new work enqueued, a map call completing, shutdown *)
  queue : task Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
}

let default_jobs () =
  match Option.bind (Sys.getenv_opt "IPDS_JOBS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> max 1 (Domain.recommended_domain_count () - 1)

let jobs t = t.jobs

let rec worker t =
  Mutex.lock t.mutex;
  worker_locked t

and worker_locked t =
  if not (Queue.is_empty t.queue) then begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    Ipds_obs.Registry.incr m_tasks_worker;
    task ();
    worker t
  end
  else if t.closed then Mutex.unlock t.mutex
  else begin
    Condition.wait t.work t.mutex;
    worker_locked t
  end

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let t =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
      jobs;
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  Ipds_obs.Registry.gauge_max m_jobs jobs;
  t

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs ->
      Ipds_obs.Registry.incr m_maps;
      let items = Array.of_list xs in
      let n = Array.length items in
      let results = Array.make n None in
      let pending = ref n (* guarded by t.mutex *) in
      let run_task i =
        let r =
          match f items.(i) with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock t.mutex;
        results.(i) <- Some r;
        decr pending;
        if !pending = 0 then Condition.broadcast t.work;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.push (fun () -> run_task i) t.queue
      done;
      Condition.broadcast t.work;
      (* The caller helps until every task of THIS call has settled.  It
         may execute tasks of other in-flight maps — that is what makes
         nested maps safe: a thread is only ever blocked when all of its
         outstanding tasks are running on other threads, and the deepest
         tasks never block. *)
      let rec help () =
        if !pending > 0 then
          if not (Queue.is_empty t.queue) then begin
            let task = Queue.pop t.queue in
            Mutex.unlock t.mutex;
            Ipds_obs.Registry.incr m_tasks_caller;
            task ();
            Mutex.lock t.mutex;
            help ()
          end
          else begin
            Condition.wait t.work t.mutex;
            help ()
          end
      in
      help ();
      Mutex.unlock t.mutex;
      Array.iter
        (function
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | Some (Ok _) -> ()
          | None -> assert false)
        results;
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error _) | None -> assert false)
           results)

let map' pool f xs =
  match pool with
  | None -> List.map f xs
  | Some t -> map t f xs

(* Fire-and-forget submission: the task runs on a worker domain as soon
   as one is free.  Unlike [map] the caller does not help, so a pool
   used this way needs at least one worker (jobs >= 2) for the task to
   ever run; the verdict server sizes its pool accordingly. *)
let async t task =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.async: pool is shut down"
  end
  else begin
    Queue.push task t.queue;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex
  end

let shutdown t =
  Mutex.lock t.mutex;
  if t.closed then Mutex.unlock t.mutex
  else begin
    t.closed <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let with_opt ?jobs ?pool f =
  match pool with
  | Some _ -> f pool
  | None -> (
      match jobs with
      | Some 1 -> f None
      | _ -> with_pool ?jobs (fun t -> f (Some t)))
