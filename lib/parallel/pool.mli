(** A small fixed-size domain pool for the experiment harness.

    [create ~jobs ()] owns [jobs - 1] worker domains; the caller of
    {!map} is the remaining worker, so [~jobs:1] spawns no domains and
    degenerates to [List.map] — sequential behaviour is recovered
    exactly, not approximated.

    {!map} may be called from inside a task running on the pool (the
    harness fans workloads out and each workload fans its attack
    attempts out).  The waiting caller keeps executing queued tasks
    while its own are outstanding, so nested maps cannot deadlock. *)

type t

val create : ?jobs:int -> unit -> t
(** [jobs] defaults to {!default_jobs}; values below 1 are clamped. *)

val jobs : t -> int
(** The parallelism the pool was created with (workers + caller). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  If one or more applications raise,
    the exception of the smallest-index element is re-raised (with its
    backtrace) after every task of this call has settled — so the
    raised exception does not depend on domain scheduling. *)

val map' : t option -> ('a -> 'b) -> 'a list -> 'b list
(** [map' None] is [List.map] (no pool anywhere in scope);
    [map' (Some t)] is [map t]. *)

val async : t -> (unit -> unit) -> unit
(** Fire-and-forget submission: the task runs on a worker domain as
    soon as one is free.  Unlike {!map} the caller does not help, so a
    pool used this way needs at least one worker ([jobs >= 2]) for the
    task to ever run.  Raises [Invalid_argument] after {!shutdown}. *)

val shutdown : t -> unit
(** Drains nothing (all maps have returned by construction), stops the
    workers and joins them.  Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)

val with_opt : ?jobs:int -> ?pool:t -> (t option -> 'a) -> 'a
(** The harness entry-point convention: reuse [pool] if the caller
    passed one, otherwise create a pool of [jobs] for the duration of
    [f] — except [~jobs:1], which passes [None] so {!map'} degenerates
    to [List.map] without spawning anything. *)

val default_jobs : unit -> int
(** [IPDS_JOBS] from the environment if set to a positive integer,
    otherwise [max 1 (Domain.recommended_domain_count () - 1)]. *)
