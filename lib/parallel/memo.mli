(** Domain-safe, exactly-once memoization keyed structurally.

    Concurrent callers of {!find_or_add} with the same key block until
    the single in-flight computation finishes; distinct keys compute in
    parallel (the lock is not held while computing).  If the
    computation raises, the key is released and the exception
    propagates to the caller that ran it; blocked callers then race to
    retry. *)

type ('k, 'v) t

val create : unit -> ('k, 'v) t

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

val computed : ('k, 'v) t -> int
(** How many computations actually ran to completion — the harness's
    "compiled/built at most once per configuration" counters. *)
