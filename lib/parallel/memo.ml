type 'v state =
  | Pending
  | Ready of 'v

type ('k, 'v) t = {
  mutex : Mutex.t;
  cond : Condition.t;
  tbl : ('k, 'v state) Hashtbl.t;
  mutable computed : int;
}

let create () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create 16;
    computed = 0;
  }

let find_or_add t k compute =
  Mutex.lock t.mutex;
  let rec get () =
    match Hashtbl.find_opt t.tbl k with
    | Some (Ready v) ->
        Mutex.unlock t.mutex;
        v
    | Some Pending ->
        Condition.wait t.cond t.mutex;
        get ()
    | None -> (
        Hashtbl.replace t.tbl k Pending;
        Mutex.unlock t.mutex;
        match compute () with
        | v ->
            Mutex.lock t.mutex;
            Hashtbl.replace t.tbl k (Ready v);
            t.computed <- t.computed + 1;
            Condition.broadcast t.cond;
            Mutex.unlock t.mutex;
            v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock t.mutex;
            Hashtbl.remove t.tbl k;
            Condition.broadcast t.cond;
            Mutex.unlock t.mutex;
            Printexc.raise_with_backtrace e bt)
  in
  get ()

let computed t =
  Mutex.lock t.mutex;
  let n = t.computed in
  Mutex.unlock t.mutex;
  n
