type 'v state =
  | Pending
  | Ready of 'v

(* hits/computed depend only on the multiset of requested keys, so they
   are stable; waits counts Pending encounters, which depend on
   scheduling, so it is not. *)
let m_hits = Ipds_obs.Registry.counter "memo.hits"
let m_computed = Ipds_obs.Registry.counter "memo.computed"
let m_waits = Ipds_obs.Registry.counter ~stable:false "memo.waits"

type ('k, 'v) t = {
  mutex : Mutex.t;
  cond : Condition.t;
  tbl : ('k, 'v state) Hashtbl.t;
  mutable computed : int;
}

let create () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create 16;
    computed = 0;
  }

let find_or_add t k compute =
  Mutex.lock t.mutex;
  let rec get () =
    match Hashtbl.find_opt t.tbl k with
    | Some (Ready v) ->
        Mutex.unlock t.mutex;
        Ipds_obs.Registry.incr m_hits;
        v
    | Some Pending ->
        Ipds_obs.Registry.incr m_waits;
        Condition.wait t.cond t.mutex;
        get ()
    | None -> (
        Hashtbl.replace t.tbl k Pending;
        Mutex.unlock t.mutex;
        match compute () with
        | v ->
            Mutex.lock t.mutex;
            Hashtbl.replace t.tbl k (Ready v);
            t.computed <- t.computed + 1;
            Ipds_obs.Registry.incr m_computed;
            Condition.broadcast t.cond;
            Mutex.unlock t.mutex;
            v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock t.mutex;
            Hashtbl.remove t.tbl k;
            Condition.broadcast t.cond;
            Mutex.unlock t.mutex;
            Printexc.raise_with_backtrace e bt)
  in
  get ()

let computed t =
  Mutex.lock t.mutex;
  let n = t.computed in
  Mutex.unlock t.mutex;
  n
