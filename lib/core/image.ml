(* The compiled flat per-function image: everything the checker's
   per-branch hot path touches, in unboxed int arrays.  Built once from
   {!Tables.t} at system load (or decoded straight from an artifact
   section); the list-based [Tables.t] stays the build/inspect
   representation. *)

type t = {
  fname : string;
  shift1 : int;
  shift2 : int;
  space_bits : int;
  mask : int;  (* space - 1, so the hash needs no load of Hash.params *)
  space : int;
  n_branches : int;
  bcv : int array;  (* bitset, 32 slots per word: word [slot lsr 5], bit
                       [slot land 31] *)
  rows : int array;  (* packed CSR rows, one word per row:
                        [(offset lsl 20) lor length], length
                        [2*space + 1] — so the branch hot path learns a
                        row's start and node count from a single load.
                        Row [slot*2 + dir] holds the edge actions, row
                        [2*space] the entry actions.  Rows tile [nodes]
                        contiguously in index order ({!validate}
                        enforces it), which caps a function at 2^20
                        nodes — far above any real table. *)
  nodes : int array;  (* packed action nodes:
                         [(target_slot lsl 16) lor (keep_mask lsl 8)
                          lor set_mask], where the byte masks apply the
                         2-bit status write to the slab byte
                         [target_slot lsr 2] — precomputed so the hot
                         path does a constant-shift load/and/or/store
                         with no variable shifts *)
  init_bsv : Bytes.t;  (* per-activation slab initializer: status code 0
                          (Unknown) for checked slots, 3 for unchecked
                          ones — so the branch hot path learns "checked"
                          and "expected" from one 2-bit read.  Sound
                          because every BAT node targets a checked slot
                          (the analysis filters actions to the checked
                          set), so codes 0-2 are only ever written over
                          checked slots. *)
}

let entry_row_index t = 2 * t.space
let row_word ~off ~len = (off lsl 20) lor len
let row_off w = w lsr 20
let row_len w = w land 0xfffff

let slot_of_pc t pc =
  let x = pc lsr 2 in
  let x = x lxor (x lsr t.shift1) in
  let x = x lxor ((x lsl t.shift2) land max_int) in
  x land t.mask

let checked t slot =
  Array.unsafe_get t.bcv (slot lsr 5) land (1 lsl (slot land 31)) <> 0

(* BSV slab cost of one activation of this function: 2 bits per slot,
   4 slots per byte. *)
let bsv_bytes t = (t.space + 3) lsr 2

let node_word ~target_slot ~code =
  let shift = (target_slot land 3) * 2 in
  (target_slot lsl 16)
  lor ((0xff land lnot (3 lsl shift)) lsl 8)
  lor (code lsl shift)

let node_slot w = w lsr 16
let node_code w = (w land 0xff) lsr (((w lsr 16) land 3) * 2)

(* checked slots start Unknown (code 0), unchecked slots carry the
   never-check marker (code 3); 0xff = four unchecked slots *)
let init_bsv_of ~space bcv =
  let b = Bytes.make ((space + 3) lsr 2) '\xff' in
  for slot = 0 to space - 1 do
    if Array.get bcv (slot lsr 5) land (1 lsl (slot land 31)) <> 0 then begin
      let byte = slot lsr 2 in
      let shift = (slot land 3) * 2 in
      Bytes.set b byte
        (Char.chr (Char.code (Bytes.get b byte) land lnot (3 lsl shift)))
    end
  done;
  b

let empty =
  {
    fname = "";
    shift1 = 1;
    shift2 = 1;
    space_bits = 0;
    mask = 0;
    space = 1;
    n_branches = 0;
    bcv = [| 0 |];
    rows = Array.make 3 0;
    nodes = [||];
    init_bsv = Bytes.make 1 '\xff';
  }

let status_code_of_action = function
  | Ipds_correlation.Action.Set_taken -> 1
  | Ipds_correlation.Action.Set_not_taken -> 2
  | Ipds_correlation.Action.Set_unknown -> 0

let action_of_status_code = function
  | 1 -> Ipds_correlation.Action.Set_taken
  | 2 -> Ipds_correlation.Action.Set_not_taken
  | _ -> Ipds_correlation.Action.Set_unknown

let of_tables (tb : Tables.t) =
  let space = Hash.space tb.Tables.hash in
  let bcv = Array.make (max 1 ((space + 31) lsr 5)) 0 in
  Array.iteri
    (fun slot b ->
      if b then bcv.(slot lsr 5) <- bcv.(slot lsr 5) lor (1 lsl (slot land 31)))
    tb.Tables.bcv;
  (* Rows in image order: the 2*space edge rows, then the entry row —
     the same linearization {!Encode} serializes, so a decoded image is
     structurally identical to one built from the decoded tables. *)
  let row_of i =
    if i < 2 * space then tb.Tables.bat.(i) else tb.Tables.entry_row
  in
  let n_nodes = ref 0 in
  for i = 0 to 2 * space do
    n_nodes := !n_nodes + List.length (row_of i)
  done;
  let rows = Array.make ((2 * space) + 1) 0 in
  let nodes = Array.make !n_nodes 0 in
  let pos = ref 0 in
  for i = 0 to 2 * space do
    let off = !pos in
    List.iter
      (fun (e : Tables.bat_entry) ->
        nodes.(!pos) <-
          node_word ~target_slot:e.Tables.target_slot
            ~code:(status_code_of_action e.Tables.action);
        incr pos)
      (row_of i);
    rows.(i) <- row_word ~off ~len:(!pos - off)
  done;
  {
    fname = tb.Tables.fname;
    shift1 = tb.Tables.hash.Hash.shift1;
    shift2 = tb.Tables.hash.Hash.shift2;
    space_bits = tb.Tables.hash.Hash.space_bits;
    mask = space - 1;
    space;
    n_branches = tb.Tables.n_branches;
    bcv;
    rows;
    nodes;
    init_bsv = init_bsv_of ~space bcv;
  }

(* The inspect-side view of a decoded image; node order is preserved, so
   [to_tables (of_tables t)] equals [t] up to the debug field. *)
let to_tables t =
  let hash = Hash.make ~shift1:t.shift1 ~shift2:t.shift2 ~space_bits:t.space_bits in
  let bcv = Array.init t.space (fun slot -> checked t slot) in
  let row i =
    let rw = t.rows.(i) in
    List.init (row_len rw) (fun k ->
        let w = t.nodes.(row_off rw + k) in
        {
          Tables.target_slot = node_slot w;
          action = action_of_status_code (node_code w);
        })
  in
  {
    Tables.fname = t.fname;
    hash;
    n_branches = t.n_branches;
    bcv;
    bat = Array.init (2 * t.space) row;
    entry_row = row (2 * t.space);
    slot_of_iid = [||];
  }

(* Structural sanity for images decoded from untrusted bytes: the rows
   tile [nodes] exactly in index order, every node's target slot is
   inside the hash space and marked in the BCV (the invariant the slab
   encoding relies on).  Raises [Invalid_argument]. *)
let validate t =
  if t.space <> 1 lsl t.space_bits || t.mask <> t.space - 1 then
    invalid_arg "Image: inconsistent hash space";
  if Array.length t.rows <> (2 * t.space) + 1 then
    invalid_arg "Image: bad row table length";
  if Array.length t.bcv < (t.space + 31) lsr 5 then
    invalid_arg "Image: BCV bitset too short";
  let n = Array.length t.nodes in
  if n > 0xfffff then invalid_arg "Image: node array too large";
  let pos = ref 0 in
  Array.iter
    (fun rw ->
      if row_off rw <> !pos then
        invalid_arg "Image: rows do not tile the node array";
      pos := !pos + row_len rw)
    t.rows;
  if !pos <> n then invalid_arg "Image: rows do not cover the node array";
  Array.iter
    (fun w ->
      if node_slot w >= t.space then
        invalid_arg "Image: node target slot outside hash space";
      if not (checked t (node_slot w)) then
        invalid_arg "Image: node targets an unchecked slot";
      if node_word ~target_slot:(node_slot w) ~code:(node_code w) <> w then
        invalid_arg "Image: malformed node masks")
    t.nodes;
  if Bytes.length t.init_bsv <> (t.space + 3) lsr 2 then
    invalid_arg "Image: slab initializer length mismatch"

(* [row_off] is the classic CSR offset table (length [2*space + 2],
   final entry the sentinel) — the form the artifact serializes — and is
   packed into per-row words here. *)
let make ~fname ~(hash : Hash.params) ~n_branches ~bcv ~row_off ~nodes =
  let space = Hash.space hash in
  if Array.length row_off <> (2 * space) + 2 then
    invalid_arg "Image: bad row-offset table length";
  let rows =
    Array.init
      ((2 * space) + 1)
      (fun i ->
        let off = row_off.(i) and next = row_off.(i + 1) in
        if off < 0 || next < off then
          invalid_arg "Image: row offsets not monotone";
        row_word ~off ~len:(next - off))
  in
  let t =
    {
      fname;
      shift1 = hash.Hash.shift1;
      shift2 = hash.Hash.shift2;
      space_bits = hash.Hash.space_bits;
      mask = space - 1;
      space;
      n_branches;
      bcv;
      rows;
      nodes;
      init_bsv = init_bsv_of ~space bcv;
    }
  in
  validate t;
  t
