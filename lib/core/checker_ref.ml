(* The pre-flat-image checker, kept verbatim as a reference semantics:
   list-based frames, per-branch allocation, per-query list traversal,
   and — exactly like the code it preserves — 3-4 atomic registry hits
   per committed branch.  The differential property tests pin the arena
   checker's verdicts, alarms and counter totals against this
   implementation, and the checker-throughput bench uses it as the
   speedup baseline, so both the allocation behaviour and the registry
   traffic of the original must survive here.

   The counters are additionally mirrored in plain fields (read them
   with {!counts}) so tests can compare totals without reading the
   registry.  The registry names dedup onto the live checker's cells;
   tests that assert on registry deltas must snapshot around the flat
   run before replaying the reference. *)
let m_calls = Ipds_obs.Registry.counter "checker.calls"
let m_returns = Ipds_obs.Registry.counter "checker.returns"
let m_branches = Ipds_obs.Registry.counter "checker.branches"
let m_checked = Ipds_obs.Registry.counter "checker.checked"
let m_verdict_ok = Ipds_obs.Registry.counter "checker.verdict_ok"
let m_verdict_alarm = Ipds_obs.Registry.counter "checker.verdict_alarm"
let m_bat_updates = Ipds_obs.Registry.counter "checker.bat_updates"

type check_info = {
  alarm : Checker.alarm option;
  was_checked : bool;
  bat_nodes : int;
}

type counts = {
  calls : int;
  returns : int;
  branches : int;
  checked : int;
  verdict_ok : int;
  verdict_alarm : int;
  bat_updates : int;
}

type frame = {
  tables : Tables.t;
  bsv : Status.t array;
}

type t = {
  lookup : string -> Tables.t;
  mutable stack : frame list;
  mutable alarms_rev : Checker.alarm list;
  mutable branches : int;
  mutable c_calls : int;
  mutable c_returns : int;
  mutable c_checked : int;
  mutable c_ok : int;
  mutable c_alarm : int;
  mutable c_bat : int;
}

let create ~lookup =
  {
    lookup;
    stack = [];
    alarms_rev = [];
    branches = 0;
    c_calls = 0;
    c_returns = 0;
    c_checked = 0;
    c_ok = 0;
    c_alarm = 0;
    c_bat = 0;
  }

let apply_row frame row =
  List.iter
    (fun (e : Tables.bat_entry) ->
      frame.bsv.(e.Tables.target_slot) <- Status.of_action e.Tables.action)
    row

let on_call t fname =
  let tables = t.lookup fname in
  let frame =
    { tables; bsv = Array.make (Hash.space tables.Tables.hash) Status.Unknown }
  in
  apply_row frame tables.Tables.entry_row;
  t.stack <- frame :: t.stack;
  Ipds_obs.Registry.incr m_calls;
  Ipds_obs.Registry.add m_bat_updates (List.length tables.Tables.entry_row);
  t.c_calls <- t.c_calls + 1;
  t.c_bat <- t.c_bat + List.length tables.Tables.entry_row;
  List.length tables.Tables.entry_row

let on_return t =
  match t.stack with
  | [] -> invalid_arg "Checker_ref.on_return: empty stack"
  | _ :: rest ->
      t.stack <- rest;
      Ipds_obs.Registry.incr m_returns;
      t.c_returns <- t.c_returns + 1

let top t =
  match t.stack with
  | [] -> invalid_arg "Checker_ref: no active frame"
  | frame :: _ -> frame

let on_branch t ~pc ~taken =
  let frame = top t in
  let tables = frame.tables in
  let slot = Tables.slot_of_pc tables pc in
  let sequence = t.branches in
  t.branches <- t.branches + 1;
  Ipds_obs.Registry.incr m_branches;
  let alarm =
    if tables.Tables.bcv.(slot) then begin
      Ipds_obs.Registry.incr m_checked;
      t.c_checked <- t.c_checked + 1;
      let expected = frame.bsv.(slot) in
      if Status.matches expected taken then begin
        Ipds_obs.Registry.incr m_verdict_ok;
        t.c_ok <- t.c_ok + 1;
        None
      end
      else begin
        Ipds_obs.Registry.incr m_verdict_alarm;
        t.c_alarm <- t.c_alarm + 1;
        let a =
          {
            Checker.fname = tables.Tables.fname;
            branch_pc = pc;
            expected;
            actual_taken = taken;
            sequence;
          }
        in
        t.alarms_rev <- a :: t.alarms_rev;
        Some a
      end
    end
    else None
  in
  let row = tables.Tables.bat.((slot * 2) + if taken then 1 else 0) in
  apply_row frame row;
  Ipds_obs.Registry.add m_bat_updates (List.length row);
  t.c_bat <- t.c_bat + List.length row;
  { alarm; was_checked = tables.Tables.bcv.(slot); bat_nodes = List.length row }

let depth t = List.length t.stack
let alarms t = List.rev t.alarms_rev
let branches_seen t = t.branches

let counts t =
  {
    calls = t.c_calls;
    returns = t.c_returns;
    branches = t.branches;
    checked = t.c_checked;
    verdict_ok = t.c_ok;
    verdict_alarm = t.c_alarm;
    bat_updates = t.c_bat;
  }
