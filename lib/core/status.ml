type t =
  | Taken
  | Not_taken
  | Unknown

let matches expected actual =
  match expected with
  | Taken -> actual
  | Not_taken -> not actual
  | Unknown -> true

let of_action = function
  | Ipds_correlation.Action.Set_taken -> Taken
  | Ipds_correlation.Action.Set_not_taken -> Not_taken
  | Ipds_correlation.Action.Set_unknown -> Unknown

let equal a b =
  match a, b with
  | Taken, Taken | Not_taken, Not_taken | Unknown, Unknown -> true
  | (Taken | Not_taken | Unknown), _ -> false

let pp ppf = function
  | Taken -> Format.pp_print_string ppf "T"
  | Not_taken -> Format.pp_print_string ppf "NT"
  | Unknown -> Format.pp_print_string ppf "UN"

let to_char = function
  | Taken -> 'T'
  | Not_taken -> 'N'
  | Unknown -> 'U'
