type t =
  | Taken
  | Not_taken
  | Unknown

let matches expected actual =
  match expected with
  | Taken -> actual
  | Not_taken -> not actual
  | Unknown -> true

let of_action = function
  | Ipds_correlation.Action.Set_taken -> Taken
  | Ipds_correlation.Action.Set_not_taken -> Not_taken
  | Ipds_correlation.Action.Set_unknown -> Unknown

(* 2-bit packed encoding used by the flat checker image: Unknown is 0 so
   a zero-filled BSV slab means all-unknown, exactly like the hardware
   reset state. *)
let to_code = function
  | Unknown -> 0
  | Taken -> 1
  | Not_taken -> 2

let of_code = function
  | 1 -> Taken
  | 2 -> Not_taken
  | _ -> Unknown

let equal a b =
  match a, b with
  | Taken, Taken | Not_taken, Not_taken | Unknown, Unknown -> true
  | (Taken | Not_taken | Unknown), _ -> false

let pp ppf = function
  | Taken -> Format.pp_print_string ppf "T"
  | Not_taken -> Format.pp_print_string ppf "NT"
  | Unknown -> Format.pp_print_string ppf "UN"

let to_char = function
  | Taken -> 'T'
  | Not_taken -> 'N'
  | Unknown -> 'U'
