module Mir = Ipds_mir
module Corr = Ipds_correlation
module Pass = Ipds_pass.Pass

type func_info = {
  entry_pc : int;
  digest : string;
  tables : Tables.t;
  image : Image.t;
  result : Corr.Analysis.result;
  refine : Corr.Refine.stats option;
      (** present iff this build ran the refine pass (precision on);
          not serialized, so artifact loads carry [None] *)
}

type t = {
  program : Mir.Program.t;
  layout : Mir.Layout.t;
  funcs : (string * func_info) list;
  by_name : (string, func_info) Hashtbl.t;
}

let make ~program ~layout ~funcs =
  let by_name = Hashtbl.create (max 16 (List.length funcs)) in
  List.iter (fun (name, info) -> Hashtbl.replace by_name name info) funcs;
  { program; layout; funcs; by_name }

(* The compile pipeline as declared passes.  Program-scope passes run
   once per build; Function-scope passes run once per unit of work, so
   their unit counters expose cache effectiveness (a warm incremental
   build runs [digest] for every function but [analyze]/[tables] only
   for the invalidated ones). *)

let pass_layout = Pass.v ~name:"layout" ~scope:Pass.Program Mir.Layout.make

let pass_prepare =
  Pass.v ~name:"prepare" ~scope:Pass.Program
    (fun ((options : Corr.Analysis.options), program) ->
      Corr.Context.prepare ~mode:options.Corr.Analysis.summary_mode program)

(* Everything the per-function stage can observe, folded into one hex
   digest: the printed body (instructions, var ids), the base PC (table
   hashes key absolute branch PCs, so layout shifts must invalidate),
   the program-wide slice the function reads, and the option set. *)
let func_digest ~options ~layout pw (f : Mir.Func.t) =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            "ipds-func";
            Corr.Analysis.options_fingerprint options;
            string_of_int (Mir.Layout.func_base layout f.Mir.Func.name);
            Corr.Context.slice_fingerprint pw f;
            Mir.Printer.func_to_string f;
          ]))

let pass_digest =
  Pass.v ~name:"digest" ~scope:Pass.Function
    (fun (options, layout, pw, f) -> func_digest ~options ~layout pw f)

let pass_analyze =
  Pass.v ~name:"analyze" ~scope:Pass.Function (fun (options, pw, f) ->
      Corr.Analysis.analyze_func ~options pw f)

let pass_refine =
  Pass.v ~name:"refine" ~scope:Pass.Function (fun (options, pw, f) ->
      Corr.Refine.analyze ~options pw f)

let pass_tables =
  Pass.v ~name:"tables" ~scope:Pass.Function (fun (layout, result) ->
      Tables.build ~layout result)

type func_cache = {
  lookup :
    digest:string -> layout:Mir.Layout.t -> Mir.Func.t -> func_info option;
  publish : digest:string -> func_info -> unit;
}

let builds = Atomic.make 0
let build_count () = Atomic.get builds
let m_builds = Ipds_obs.Registry.counter "system.builds"

let build ?options ?pool ?func_cache program =
  let options = Option.value options ~default:Corr.Analysis.default_options in
  Atomic.incr builds;
  Ipds_obs.Registry.incr m_builds;
  Ipds_obs.Span.time "core.build" (fun () ->
      let layout = Pass.run pass_layout program in
      let pw = Pass.run pass_prepare (options, program) in
      let compile_func (f : Mir.Func.t) =
        let name = f.Mir.Func.name in
        let digest = Pass.run pass_digest (options, layout, pw, f) in
        let cached =
          match func_cache with
          | Some c -> c.lookup ~digest ~layout f
          | None -> None
        in
        match cached with
        | Some info -> (name, info)
        | None ->
            let result, refine =
              match options.Corr.Analysis.precision with
              | Corr.Analysis.Off ->
                  (Pass.run pass_analyze (options, pw, f), None)
              | Corr.Analysis.Refine _ ->
                  let result, stats = Pass.run pass_refine (options, pw, f) in
                  (result, Some stats)
            in
            let tables = Pass.run pass_tables (layout, result) in
            let info =
              {
                entry_pc = Mir.Layout.func_base layout name;
                digest;
                tables;
                image = Image.of_tables tables;
                result;
                refine;
              }
            in
            (match func_cache with
            | Some c -> c.publish ~digest info
            | None -> ());
            (name, info)
      in
      (* Fan the per-function stage out; [map'] preserves list order, so
         the result is bit-identical to the sequential build. *)
      let funcs =
        Ipds_parallel.Pool.map' pool compile_func program.Mir.Program.funcs
      in
      make ~program ~layout ~funcs)

(* The memo is keyed by a content digest of the printed program and the
   option fingerprint — not by the structural [(Program.t, options)]
   pair, whose deep compare walked the whole IR on every lookup and
   whose closure-bearing [options] made hashing fragile. *)
let cache : (string, t) Ipds_parallel.Memo.t = Ipds_parallel.Memo.create ()

let build_key ~options program =
  Digest.to_hex
    (Digest.string
       (Corr.Analysis.options_fingerprint options
       ^ "\x00"
       ^ Mir.Printer.program_to_string program))

let cached_build ?options ?pool program =
  let options = Option.value options ~default:Corr.Analysis.default_options in
  Ipds_parallel.Memo.find_or_add cache (build_key ~options program) (fun () ->
      build ~options ?pool program)

let seed_cache ?options program t =
  let options = Option.value options ~default:Corr.Analysis.default_options in
  ignore
    (Ipds_parallel.Memo.find_or_add cache (build_key ~options program)
       (fun () -> t))

let info t name =
  (* exception-style find: no [Some] box on the checker's call hot path *)
  match Hashtbl.find t.by_name name with
  | i -> i
  | exception Not_found ->
      invalid_arg (Printf.sprintf "System: unknown function %s" name)

let mem t name = Hashtbl.mem t.by_name name

let tables t name = (info t name).tables
let image t name = (info t name).image
let new_checker t = Checker.create ~lookup:(image t)
let new_ref_checker t = Checker_ref.create ~lookup:(tables t)

type size_stats = {
  per_func : (string * Tables.sizes) list;
  avg_bsv_bits : float;
  avg_bcv_bits : float;
  avg_bat_bits : float;
}

let size_stats t =
  let per_func = List.map (fun (n, i) -> (n, Tables.sizes i.tables)) t.funcs in
  let n = float_of_int (max 1 (List.length per_func)) in
  let sum f = float_of_int (List.fold_left (fun acc (_, s) -> acc + f s) 0 per_func) in
  {
    per_func;
    avg_bsv_bits = sum (fun s -> s.Tables.bsv_bits) /. n;
    avg_bcv_bits = sum (fun s -> s.Tables.bcv_bits) /. n;
    avg_bat_bits = sum (fun s -> s.Tables.bat_bits) /. n;
  }

let checked_branch_count t =
  List.fold_left
    (fun acc (_, i) -> acc + List.length i.result.Corr.Analysis.checked)
    0 t.funcs

let total_branch_count t =
  List.fold_left
    (fun acc (_, i) ->
      acc + List.length (Mir.Func.branches i.result.Corr.Analysis.func))
    0 t.funcs
