module Mir = Ipds_mir
module Corr = Ipds_correlation

type func_info = {
  entry_pc : int;
  tables : Tables.t;
  result : Corr.Analysis.result;
}

type t = {
  program : Mir.Program.t;
  layout : Mir.Layout.t;
  funcs : (string * func_info) list;
}

let builds = Atomic.make 0
let build_count () = Atomic.get builds
let m_builds = Ipds_obs.Registry.counter "system.builds"

let build ?options program =
  Atomic.incr builds;
  Ipds_obs.Registry.incr m_builds;
  Ipds_obs.Span.time "core.build" (fun () ->
      let layout = Mir.Layout.make program in
      let results = Corr.Analysis.analyze_program ?options program in
      let funcs =
        List.map
          (fun (name, result) ->
            let tables = Tables.build ~layout result in
            (name, { entry_pc = Mir.Layout.func_base layout name; tables; result }))
          results
      in
      { program; layout; funcs })

(* Programs are pure data, so structural keys are safe; workload
   programs are themselves memoised, so in practice lookups hit the
   physical-equality fast path of [Hashtbl]'s structural compare. *)
let cache : (Mir.Program.t * Corr.Analysis.options, t) Ipds_parallel.Memo.t =
  Ipds_parallel.Memo.create ()

let cached_build ?options program =
  let options = Option.value options ~default:Corr.Analysis.default_options in
  Ipds_parallel.Memo.find_or_add cache (program, options) (fun () ->
      build ~options program)

let seed_cache ?options program t =
  let options = Option.value options ~default:Corr.Analysis.default_options in
  ignore (Ipds_parallel.Memo.find_or_add cache (program, options) (fun () -> t))

let info t name =
  match List.assoc_opt name t.funcs with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "System: unknown function %s" name)

let tables t name = (info t name).tables
let new_checker t = Checker.create ~lookup:(tables t)

type size_stats = {
  per_func : (string * Tables.sizes) list;
  avg_bsv_bits : float;
  avg_bcv_bits : float;
  avg_bat_bits : float;
}

let size_stats t =
  let per_func = List.map (fun (n, i) -> (n, Tables.sizes i.tables)) t.funcs in
  let n = float_of_int (max 1 (List.length per_func)) in
  let sum f = float_of_int (List.fold_left (fun acc (_, s) -> acc + f s) 0 per_func) in
  {
    per_func;
    avg_bsv_bits = sum (fun s -> s.Tables.bsv_bits) /. n;
    avg_bcv_bits = sum (fun s -> s.Tables.bcv_bits) /. n;
    avg_bat_bits = sum (fun s -> s.Tables.bat_bits) /. n;
  }

let checked_branch_count t =
  List.fold_left
    (fun acc (_, i) -> acc + List.length i.result.Corr.Analysis.checked)
    0 t.funcs

let total_branch_count t =
  List.fold_left
    (fun acc (_, i) ->
      acc + List.length (Mir.Func.branches i.result.Corr.Analysis.func))
    0 t.funcs
