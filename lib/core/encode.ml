module W = Bitstream.Writer
module R = Bitstream.Reader

let rec ceil_log2 n = if n <= 1 then 0 else 1 + ceil_log2 ((n + 1) / 2)

let action_code = function
  | Ipds_correlation.Action.Set_taken -> 1
  | Ipds_correlation.Action.Set_not_taken -> 2
  | Ipds_correlation.Action.Set_unknown -> 3

let action_of_code = function
  | 1 -> Ipds_correlation.Action.Set_taken
  | 2 -> Ipds_correlation.Action.Set_not_taken
  | 3 -> Ipds_correlation.Action.Set_unknown
  | c -> invalid_arg (Printf.sprintf "Encode: bad action code %d" c)

(* Rows in image order: the 2*space BAT edge rows, then the entry row. *)
let rows (t : Tables.t) = Array.to_list t.bat @ [ t.entry_row ]

(* Linearize the rows into a node pool: per node
   (target_slot, action, next index; 0 = null), heads point at the first
   node of each row. *)
let pool (t : Tables.t) =
  let nodes = ref [] in
  let count = ref 0 in
  let heads =
    List.map
      (fun row ->
        match row with
        | [] -> 0
        | entries ->
            let head = !count + 1 in
            let n = List.length entries in
            List.iteri
              (fun i (e : Tables.bat_entry) ->
                incr count;
                let next = if i = n - 1 then 0 else !count + 1 in
                nodes := (e.Tables.target_slot, e.Tables.action, next) :: !nodes)
              entries;
            head)
      (rows t)
  in
  (heads, List.rev !nodes)

let widths (t : Tables.t) =
  let _, nodes = pool t in
  let n_nodes = List.length nodes in
  let ptr_bits = max 1 (ceil_log2 (n_nodes + 1)) in
  let slot_bits = max 1 t.hash.Hash.space_bits in
  (ptr_bits, slot_bits, n_nodes)

let payload_bits t =
  let space = Hash.space t.Tables.hash in
  let ptr_bits, slot_bits, n_nodes = widths t in
  space + (((2 * space) + 1) * ptr_bits) + (n_nodes * (slot_bits + 2 + ptr_bits))

let write_function w ~entry_pc (t : Tables.t) =
  let name = t.fname in
  W.push w ~width:16 (String.length name);
  String.iter (fun c -> W.push w ~width:8 (Char.code c)) name;
  W.push w ~width:32 entry_pc;
  W.push w ~width:8 t.hash.Hash.shift1;
  W.push w ~width:8 t.hash.Hash.shift2;
  W.push w ~width:8 t.hash.Hash.space_bits;
  W.push w ~width:16 t.n_branches;
  let heads, nodes = pool t in
  let ptr_bits, slot_bits, n_nodes = widths t in
  W.push w ~width:16 n_nodes;
  (* packed payload *)
  Array.iter (fun b -> W.push w ~width:1 (if b then 1 else 0)) t.bcv;
  List.iter (fun h -> W.push w ~width:ptr_bits h) heads;
  List.iter
    (fun (slot, action, next) ->
      W.push w ~width:slot_bits slot;
      W.push w ~width:2 (action_code action);
      W.push w ~width:ptr_bits next)
    nodes;
  W.align_byte w

let read_function r =
  let name_len = R.pull r ~width:16 in
  let name = String.init name_len (fun _ -> Char.chr (R.pull r ~width:8)) in
  let entry_pc = R.pull r ~width:32 in
  let shift1 = R.pull r ~width:8 in
  let shift2 = R.pull r ~width:8 in
  let space_bits = R.pull r ~width:8 in
  let n_branches = R.pull r ~width:16 in
  let n_nodes = R.pull r ~width:16 in
  let hash = Hash.make ~shift1 ~shift2 ~space_bits in
  let space = Hash.space hash in
  let ptr_bits = max 1 (ceil_log2 (n_nodes + 1)) in
  let slot_bits = max 1 space_bits in
  let bcv = Array.init space (fun _ -> R.pull r ~width:1 = 1) in
  let heads = List.init ((2 * space) + 1) (fun _ -> R.pull r ~width:ptr_bits) in
  let node_array =
    Array.init n_nodes (fun _ ->
        let slot = R.pull r ~width:slot_bits in
        let action = action_of_code (R.pull r ~width:2) in
        let next = R.pull r ~width:ptr_bits in
        (slot, action, next))
  in
  R.align_byte r;
  let rec chase idx acc =
    if idx = 0 then List.rev acc
    else begin
      if idx > n_nodes then invalid_arg "Encode: dangling node pointer";
      let slot, action, next = node_array.(idx - 1) in
      chase next ({ Tables.target_slot = slot; action } :: acc)
    end
  in
  let all_rows = List.map (fun h -> chase h []) heads in
  let bat_rows, entry_row =
    let rec split n acc = function
      | [ last ] when n = 0 -> (List.rev acc, last)
      | x :: rest when n > 0 -> split (n - 1) (x :: acc) rest
      | _ -> invalid_arg "Encode: bad row structure"
    in
    split (2 * space) [] all_rows
  in
  ( entry_pc,
    {
      Tables.fname = name;
      hash;
      n_branches;
      bcv;
      bat = Array.of_list bat_rows;
      entry_row;
      slot_of_iid = [];
    } )

let function_image ~entry_pc t =
  let w = W.create () in
  write_function w ~entry_pc t;
  W.contents w

let decode_function bytes = read_function (R.of_bytes bytes)

let program_image (sys : System.t) =
  let w = W.create () in
  W.push w ~width:16 (List.length sys.System.funcs);
  List.iter
    (fun (_, (info : System.func_info)) ->
      write_function w ~entry_pc:info.System.entry_pc info.System.tables)
    sys.System.funcs;
  W.contents w

let load_program bytes =
  let r = R.of_bytes bytes in
  let n = R.pull r ~width:16 in
  List.init n (fun _ ->
      let entry_pc, tables = read_function r in
      (tables.Tables.fname, (entry_pc, tables)))
