module W = Bitstream.Writer
module R = Bitstream.Reader

let rec ceil_log2 n = if n <= 1 then 0 else 1 + ceil_log2 ((n + 1) / 2)

let action_code = function
  | Ipds_correlation.Action.Set_taken -> 1
  | Ipds_correlation.Action.Set_not_taken -> 2
  | Ipds_correlation.Action.Set_unknown -> 3

let action_of_code = function
  | 1 -> Ipds_correlation.Action.Set_taken
  | 2 -> Ipds_correlation.Action.Set_not_taken
  | 3 -> Ipds_correlation.Action.Set_unknown
  | c -> invalid_arg (Printf.sprintf "Encode: bad action code %d" c)

(* Rows in image order: the 2*space BAT edge rows, then the entry row. *)
let rows (t : Tables.t) = Array.to_list t.bat @ [ t.entry_row ]

(* Linearize the rows into a node pool: per node
   (target_slot, action, next index; 0 = null), heads point at the first
   node of each row. *)
let pool (t : Tables.t) =
  let nodes = ref [] in
  let count = ref 0 in
  let heads =
    List.map
      (fun row ->
        match row with
        | [] -> 0
        | entries ->
            let head = !count + 1 in
            let n = List.length entries in
            List.iteri
              (fun i (e : Tables.bat_entry) ->
                incr count;
                let next = if i = n - 1 then 0 else !count + 1 in
                nodes := (e.Tables.target_slot, e.Tables.action, next) :: !nodes)
              entries;
            head)
      (rows t)
  in
  (heads, List.rev !nodes)

let widths (t : Tables.t) =
  let _, nodes = pool t in
  let n_nodes = List.length nodes in
  let ptr_bits = max 1 (ceil_log2 (n_nodes + 1)) in
  let slot_bits = max 1 t.hash.Hash.space_bits in
  (ptr_bits, slot_bits, n_nodes)

let payload_bits t =
  let space = Hash.space t.Tables.hash in
  let ptr_bits, slot_bits, n_nodes = widths t in
  space + (((2 * space) + 1) * ptr_bits) + (n_nodes * (slot_bits + 2 + ptr_bits))

let write_function w ~entry_pc (t : Tables.t) =
  let name = t.fname in
  W.push w ~width:16 (String.length name);
  String.iter (fun c -> W.push w ~width:8 (Char.code c)) name;
  W.push w ~width:32 entry_pc;
  W.push w ~width:8 t.hash.Hash.shift1;
  W.push w ~width:8 t.hash.Hash.shift2;
  W.push w ~width:8 t.hash.Hash.space_bits;
  W.push w ~width:16 t.n_branches;
  let heads, nodes = pool t in
  let ptr_bits, slot_bits, n_nodes = widths t in
  W.push w ~width:16 n_nodes;
  (* packed payload *)
  Array.iter (fun b -> W.push w ~width:1 (if b then 1 else 0)) t.bcv;
  List.iter (fun h -> W.push w ~width:ptr_bits h) heads;
  List.iter
    (fun (slot, action, next) ->
      W.push w ~width:slot_bits slot;
      W.push w ~width:2 (action_code action);
      W.push w ~width:ptr_bits next)
    nodes;
  W.align_byte w

(* Decode straight into the flat {!Image.t}: one pass pulls the header
   and node pool into flat int arrays, then each linked row is chased
   once into the CSR arrays.  The list-view [Tables.t] is derived from
   the image (load-time only); no per-query bit-pulling remains. *)
let read_function_full r =
  let name_len = R.pull r ~width:16 in
  let name = String.init name_len (fun _ -> Char.chr (R.pull r ~width:8)) in
  let entry_pc = R.pull r ~width:32 in
  let shift1 = R.pull r ~width:8 in
  let shift2 = R.pull r ~width:8 in
  let space_bits = R.pull r ~width:8 in
  let n_branches = R.pull r ~width:16 in
  let n_nodes = R.pull r ~width:16 in
  let hash = Hash.make ~shift1 ~shift2 ~space_bits in
  let space = Hash.space hash in
  let ptr_bits = max 1 (ceil_log2 (n_nodes + 1)) in
  let slot_bits = max 1 space_bits in
  let bcv = Array.make (max 1 ((space + 31) lsr 5)) 0 in
  for slot = 0 to space - 1 do
    if R.pull r ~width:1 = 1 then
      bcv.(slot lsr 5) <- bcv.(slot lsr 5) lor (1 lsl (slot land 31))
  done;
  let heads = Array.init ((2 * space) + 1) (fun _ -> R.pull r ~width:ptr_bits) in
  let node_slot = Array.make n_nodes 0 in
  let node_code = Array.make n_nodes 0 in
  let node_next = Array.make n_nodes 0 in
  for i = 0 to n_nodes - 1 do
    node_slot.(i) <- R.pull r ~width:slot_bits;
    (* wire action code (1=T, 2=NT, 3=unknown) → status code (1,2,0);
       validate through the action decoder so a 0 code still rejects *)
    node_code.(i) <- Status.to_code (Status.of_action (action_of_code (R.pull r ~width:2)));
    node_next.(i) <- R.pull r ~width:ptr_bits
  done;
  R.align_byte r;
  let row_off = Array.make ((2 * space) + 2) 0 in
  let nodes = Array.make n_nodes 0 in
  let pos = ref 0 in
  Array.iteri
    (fun rowi head ->
      row_off.(rowi) <- !pos;
      let idx = ref head in
      let steps = ref 0 in
      while !idx <> 0 do
        if !idx > n_nodes then invalid_arg "Encode: dangling node pointer";
        incr steps;
        if !steps > n_nodes || !pos >= n_nodes then
          invalid_arg "Encode: node pool overcommitted";
        let i = !idx - 1 in
        nodes.(!pos) <- Image.node_word ~target_slot:node_slot.(i) ~code:node_code.(i);
        incr pos;
        idx := node_next.(i)
      done)
    heads;
  row_off.((2 * space) + 1) <- !pos;
  (* orphan nodes (unreachable from any head) simply shrink the pool *)
  let nodes = if !pos = n_nodes then nodes else Array.sub nodes 0 !pos in
  let image = Image.make ~fname:name ~hash ~n_branches ~bcv ~row_off ~nodes in
  (entry_pc, image)

let read_function r =
  let entry_pc, image = read_function_full r in
  (entry_pc, Image.to_tables image)

let function_image ~entry_pc t =
  let w = W.create () in
  write_function w ~entry_pc t;
  W.contents w

let decode_function bytes = read_function (R.of_bytes bytes)

let decode_function_full bytes =
  let entry_pc, image = read_function_full (R.of_bytes bytes) in
  (entry_pc, Image.to_tables image, image)

let program_image (sys : System.t) =
  let w = W.create () in
  W.push w ~width:16 (List.length sys.System.funcs);
  List.iter
    (fun (_, (info : System.func_info)) ->
      write_function w ~entry_pc:info.System.entry_pc info.System.tables)
    sys.System.funcs;
  W.contents w

let load_program bytes =
  let r = R.of_bytes bytes in
  let n = R.pull r ~width:16 in
  List.init n (fun _ ->
      let entry_pc, tables = read_function r in
      (tables.Tables.fname, (entry_pc, tables)))
