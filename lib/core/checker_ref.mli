(** Reference checker: the straightforward list-based implementation
    the flat-image {!Checker} replaced, kept as an executable
    specification.

    Differential property tests pin {!Checker} against this on random
    programs and every workload (verdicts, alarms and counter totals
    must agree exactly), and [bench checker-throughput] measures the
    flat checker's speedup over it.

    Faithful to the original's observability too: it performs the same
    3-4 atomic {!Ipds_obs.Registry} hits per committed branch the
    pre-flat checker did (the speedup baseline must keep that cost),
    and additionally mirrors the totals in plain fields — read them
    with {!counts} without touching the registry.  The registry names
    dedup onto the live checker's cells, so tests asserting registry
    deltas must snapshot around the flat run before replaying this
    reference. *)

type check_info = {
  alarm : Checker.alarm option;
  was_checked : bool;
  bat_nodes : int;
}

type counts = {
  calls : int;
  returns : int;
  branches : int;
  checked : int;
  verdict_ok : int;
  verdict_alarm : int;
  bat_updates : int;
}

type t

val create : lookup:(string -> Tables.t) -> t
val on_call : t -> string -> int
val on_return : t -> unit
(** Raises [Invalid_argument] when the stack is empty. *)

val on_branch : t -> pc:int -> taken:bool -> check_info
val depth : t -> int
val alarms : t -> Checker.alarm list
val branches_seen : t -> int
val counts : t -> counts
