type alarm = {
  fname : string;
  branch_pc : int;
  expected : Status.t;
  actual_taken : bool;
  sequence : int;
}

type check_info = {
  alarm : alarm option;
  was_checked : bool;
  bat_nodes : int;
}

type frame = {
  tables : Tables.t;
  bsv : Status.t array;
}

type t = {
  lookup : string -> Tables.t;
  mutable stack : frame list;
  mutable alarms_rev : alarm list;
  mutable branches : int;
}

let create ~lookup = { lookup; stack = []; alarms_rev = []; branches = 0 }

let apply_row frame row =
  List.iter
    (fun (e : Tables.bat_entry) ->
      frame.bsv.(e.target_slot) <- Status.of_action e.action)
    row

let on_call t fname =
  let tables = t.lookup fname in
  let frame =
    { tables; bsv = Array.make (Hash.space tables.Tables.hash) Status.Unknown }
  in
  apply_row frame tables.Tables.entry_row;
  t.stack <- frame :: t.stack;
  List.length tables.Tables.entry_row

let on_return t =
  match t.stack with
  | [] -> invalid_arg "Checker.on_return: empty stack"
  | _ :: rest -> t.stack <- rest

let top t =
  match t.stack with
  | [] -> invalid_arg "Checker: no active frame"
  | frame :: _ -> frame

let on_branch t ~pc ~taken =
  let frame = top t in
  let tables = frame.tables in
  let slot = Tables.slot_of_pc tables pc in
  let sequence = t.branches in
  t.branches <- t.branches + 1;
  let alarm =
    if tables.Tables.bcv.(slot) then begin
      let expected = frame.bsv.(slot) in
      if Status.matches expected taken then None
      else begin
        let a =
          {
            fname = tables.Tables.fname;
            branch_pc = pc;
            expected;
            actual_taken = taken;
            sequence;
          }
        in
        t.alarms_rev <- a :: t.alarms_rev;
        Some a
      end
    end
    else None
  in
  let row = tables.Tables.bat.((slot * 2) + if taken then 1 else 0) in
  apply_row frame row;
  { alarm; was_checked = tables.Tables.bcv.(slot); bat_nodes = List.length row }

let depth t = List.length t.stack
let alarms t = List.rev t.alarms_rev
let branches_seen t = t.branches

let current_statuses t =
  let frame = top t in
  Array.to_list (Array.mapi (fun slot s -> (slot, s)) frame.bsv)
