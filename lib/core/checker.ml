(* All checker counters are stable: they count events of the simulated
   program, whose multiset is independent of host scheduling. *)
let m_calls = Ipds_obs.Registry.counter "checker.calls"
let m_returns = Ipds_obs.Registry.counter "checker.returns"
let m_branches = Ipds_obs.Registry.counter "checker.branches"
let m_checked = Ipds_obs.Registry.counter "checker.checked"
let m_verdict_ok = Ipds_obs.Registry.counter "checker.verdict_ok"
let m_verdict_alarm = Ipds_obs.Registry.counter "checker.verdict_alarm"
let m_bat_updates = Ipds_obs.Registry.counter "checker.bat_updates"

type alarm = {
  fname : string;
  branch_pc : int;
  expected : Status.t;
  actual_taken : bool;
  sequence : int;
}

type check_info = {
  alarm : alarm option;
  was_checked : bool;
  bat_nodes : int;
}

type frame = {
  tables : Tables.t;
  bsv : Status.t array;
}

type t = {
  lookup : string -> Tables.t;
  mutable stack : frame list;
  mutable alarms_rev : alarm list;
  mutable branches : int;
}

let create ~lookup = { lookup; stack = []; alarms_rev = []; branches = 0 }

let apply_row frame row =
  List.iter
    (fun (e : Tables.bat_entry) ->
      frame.bsv.(e.target_slot) <- Status.of_action e.action)
    row

let on_call t fname =
  let tables = t.lookup fname in
  let frame =
    { tables; bsv = Array.make (Hash.space tables.Tables.hash) Status.Unknown }
  in
  apply_row frame tables.Tables.entry_row;
  t.stack <- frame :: t.stack;
  Ipds_obs.Registry.incr m_calls;
  Ipds_obs.Registry.add m_bat_updates (List.length tables.Tables.entry_row);
  List.length tables.Tables.entry_row

let on_return t =
  match t.stack with
  | [] -> invalid_arg "Checker.on_return: empty stack"
  | _ :: rest ->
      t.stack <- rest;
      Ipds_obs.Registry.incr m_returns

let top t =
  match t.stack with
  | [] -> invalid_arg "Checker: no active frame"
  | frame :: _ -> frame

let on_branch t ~pc ~taken =
  let frame = top t in
  let tables = frame.tables in
  let slot = Tables.slot_of_pc tables pc in
  let sequence = t.branches in
  t.branches <- t.branches + 1;
  Ipds_obs.Registry.incr m_branches;
  let alarm =
    if tables.Tables.bcv.(slot) then begin
      Ipds_obs.Registry.incr m_checked;
      let expected = frame.bsv.(slot) in
      if Status.matches expected taken then begin
        Ipds_obs.Registry.incr m_verdict_ok;
        None
      end
      else begin
        Ipds_obs.Registry.incr m_verdict_alarm;
        let a =
          {
            fname = tables.Tables.fname;
            branch_pc = pc;
            expected;
            actual_taken = taken;
            sequence;
          }
        in
        t.alarms_rev <- a :: t.alarms_rev;
        Some a
      end
    end
    else None
  in
  let row = tables.Tables.bat.((slot * 2) + if taken then 1 else 0) in
  apply_row frame row;
  Ipds_obs.Registry.add m_bat_updates (List.length row);
  { alarm; was_checked = tables.Tables.bcv.(slot); bat_nodes = List.length row }

let depth t = List.length t.stack
let alarms t = List.rev t.alarms_rev
let branches_seen t = t.branches

let current_statuses t =
  let frame = top t in
  Array.to_list (Array.mapi (fun slot s -> (slot, s)) frame.bsv)
