(* All checker counters are stable: they count events of the simulated
   program, whose multiset is independent of host scheduling.  The hot
   path accumulates them in plain mutable fields and flushes to the
   registry when an activation stack empties (and on {!flush}), so a
   checked branch costs no atomic operation. *)
let m_calls = Ipds_obs.Registry.counter "checker.calls"
let m_returns = Ipds_obs.Registry.counter "checker.returns"
let m_branches = Ipds_obs.Registry.counter "checker.branches"
let m_checked = Ipds_obs.Registry.counter "checker.checked"
let m_verdict_ok = Ipds_obs.Registry.counter "checker.verdict_ok"
let m_verdict_alarm = Ipds_obs.Registry.counter "checker.verdict_alarm"
let m_bat_updates = Ipds_obs.Registry.counter "checker.bat_updates"

type alarm = {
  fname : string;
  branch_pc : int;
  expected : Status.t;
  actual_taken : bool;
  sequence : int;
}

(* Branch verdicts are a packed int, never allocated:
     bit 0      — the branch was marked in the BCV
     bit 1      — status mismatch (an alarm was recorded)
     bit 2      — protocol violation: branch with no active frame
     bits 3..4  — the expected status code ({!Status.to_code})
     bits 5..   — BAT nodes applied by the update *)
type verdict = int

let verdict_checked v = v land 1 <> 0
let verdict_alarm v = v land 2 <> 0
let verdict_violation v = v land 4 <> 0
let verdict_ok v = v land 6 = 0
let verdict_expected v = Status.of_code ((v lsr 3) land 3)
let verdict_bat_nodes v = v lsr 5
let violation_verdict = 4

(* The frame arena: activation [i] owns [images.(i)], plus the 2-bit
   packed BSV slab bytes [offs.(i) .. offs.(i) + bsv_bytes).  Pushing
   zero-fills a slab slice; popping just rewinds [slab_top].  Both
   arrays grow geometrically and are never shrunk, so a steady-state
   call/branch/return cycle performs no allocation at all. *)
type t = {
  lookup : string -> Image.t;
  mutable images : Image.t array;
  mutable offs : int array;
  mutable slab : Bytes.t;
  mutable depth : int;
  mutable slab_top : int;
  (* cached top frame — valid whenever [depth > 0]; saves two array
     reads per branch on the hot path.  The five image fields the
     branch path touches are flattened alongside so every hot load is
     one indirection from [t], not two through [top_img] *)
  mutable top_img : Image.t;
  mutable top_off : int;
  mutable top_shift1 : int;
  mutable top_shift2 : int;
  mutable top_mask : int;
  mutable top_rows : int array;
  mutable top_nodes : int array;
  mutable alarms_rev : alarm list;
  mutable n_alarms : int;
  mutable branches : int;
  (* pending (unflushed) counter deltas; the branch delta is derived
     from the [branches] total and a flush watermark so the hot path
     pays one store, not two *)
  mutable f_branches : int;
  mutable d_calls : int;
  mutable d_returns : int;
  (* checked and BAT-node deltas packed in one field (checked in the
     low 32 bits, nodes above) so the hot checked-branch-with-update
     path pays a single read-modify-write, not two.  Both halves reset
     at every flush — and the stack empties (auto-flushing) at the end
     of every replayed trace — so wrapping 32 bits would take one
     activation epoch with 2^32 checked branches, far beyond any
     memory-bounded trace. *)
  mutable d_cb : int;
  mutable d_alarm : int;
}

let create ~lookup =
  {
    lookup;
    images = Array.make 16 Image.empty;
    offs = Array.make 16 0;
    slab = Bytes.make 256 '\000';
    depth = 0;
    slab_top = 0;
    top_img = Image.empty;
    top_off = 0;
    top_shift1 = 0;
    top_shift2 = 0;
    top_mask = 0;
    top_rows = Image.empty.Image.rows;
    top_nodes = Image.empty.Image.nodes;
    alarms_rev = [];
    n_alarms = 0;
    branches = 0;
    f_branches = 0;
    d_calls = 0;
    d_returns = 0;
    d_cb = 0;
    d_alarm = 0;
  }

let flush t =
  let add m n = if n <> 0 then Ipds_obs.Registry.add m n in
  add m_calls t.d_calls;
  add m_returns t.d_returns;
  add m_branches (t.branches - t.f_branches);
  let d_checked = t.d_cb land 0xffff_ffff in
  add m_checked d_checked;
  (* every checked branch is ok xor alarm, so the ok delta is derived
     rather than paid for with a third store per branch *)
  add m_verdict_ok (d_checked - t.d_alarm);
  add m_verdict_alarm t.d_alarm;
  add m_bat_updates (t.d_cb lsr 32);
  t.f_branches <- t.branches;
  t.d_calls <- 0;
  t.d_returns <- 0;
  t.d_cb <- 0;
  t.d_alarm <- 0

let grow_frames t =
  let cap = Array.length t.images in
  let images = Array.make (2 * cap) Image.empty in
  Array.blit t.images 0 images 0 cap;
  t.images <- images;
  let offs = Array.make (2 * cap) 0 in
  Array.blit t.offs 0 offs 0 cap;
  t.offs <- offs

let ensure_slab t need =
  let cap = Bytes.length t.slab in
  if t.slab_top + need > cap then begin
    let ncap = ref (max 256 (2 * cap)) in
    while t.slab_top + need > !ncap do
      ncap := 2 * !ncap
    done;
    let slab = Bytes.make !ncap '\000' in
    Bytes.blit t.slab 0 slab 0 t.slab_top;
    t.slab <- slab
  end

(* Apply CSR row [r] of [img] to the frame slab at byte offset [off];
   returns the node count.  2-bit read-modify-write per node. *)
let apply_row t (img : Image.t) off r =
  let rw = Array.unsafe_get img.Image.rows r in
  let lo = Image.row_off rw in
  let n = Image.row_len rw in
  for i = lo to lo + n - 1 do
    let w = Array.unsafe_get img.Image.nodes i in
    let byte = off + (w lsr 18) in
    let cur = Char.code (Bytes.unsafe_get t.slab byte) in
    Bytes.unsafe_set t.slab byte
      (Char.unsafe_chr ((cur land ((w lsr 8) land 0xff)) lor (w land 0xff)))
  done;
  n

let set_top t (img : Image.t) off =
  t.top_img <- img;
  t.top_off <- off;
  t.top_shift1 <- img.Image.shift1;
  t.top_shift2 <- img.Image.shift2;
  t.top_mask <- img.Image.mask;
  t.top_rows <- img.Image.rows;
  t.top_nodes <- img.Image.nodes

let on_call_img t (img : Image.t) =
  if t.depth = Array.length t.images then grow_frames t;
  let init = img.Image.init_bsv in
  let bytes = Bytes.length init in
  ensure_slab t bytes;
  let off = t.slab_top in
  Bytes.blit init 0 t.slab off bytes;
  Array.unsafe_set t.images t.depth img;
  Array.unsafe_set t.offs t.depth off;
  t.depth <- t.depth + 1;
  t.slab_top <- off + bytes;
  set_top t img off;
  t.d_calls <- t.d_calls + 1;
  let n = apply_row t img off (2 * img.Image.space) in
  t.d_cb <- t.d_cb + (n lsl 32);
  n

let on_call t fname = on_call_img t (t.lookup fname)

let on_return t =
  if t.depth = 0 then false
  else begin
    let i = t.depth - 1 in
    t.depth <- i;
    t.slab_top <- Array.unsafe_get t.offs i;
    (* drop the image reference so a popped frame doesn't pin it *)
    Array.unsafe_set t.images i Image.empty;
    if i = 0 then set_top t Image.empty 0
    else
      set_top t
        (Array.unsafe_get t.images (i - 1))
        (Array.unsafe_get t.offs (i - 1));
    t.d_returns <- t.d_returns + 1;
    if i = 0 then flush t;
    true
  end

(* The cold alarm path, kept out of line so [on_branch]'s ok path stays
   small and allocation-free. *)
let[@inline never] record_alarm t pc taken v sequence =
  t.d_alarm <- t.d_alarm + 1;
  let a =
    {
      fname = t.top_img.Image.fname;
      branch_pc = pc;
      expected = Status.of_code v;
      actual_taken = taken;
      sequence;
    }
  in
  t.alarms_rev <- a :: t.alarms_rev;
  t.n_alarms <- t.n_alarms + 1;
  3 lor (v lsl 3)

let on_branch t ~pc ~taken =
  if t.depth = 0 then violation_verdict
  else begin
    let off = t.top_off in
    (* inlined collision-free hash.  [Hash.hash] masks the shifted-left
       term with [max_int]; that only clears bit 62, which the final
       [land mask] discards anyway (the mask covers low bits), so the
       slot comes out identical without it — pinned by the differential
       tests against the reference checker *)
    let x = pc lsr 2 in
    let x = x lxor (x lsr t.top_shift1) in
    let x = x lxor (x lsl t.top_shift2) in
    let slot = x land t.top_mask in
    let sequence = t.branches in
    t.branches <- sequence + 1;
    (* one 2-bit read answers both questions: code 3 = unchecked slot,
       codes 0-2 = the expected status of a checked one *)
    let byte = off + (slot lsr 2) in
    let shift = (slot land 3) * 2 in
    let v = (Char.code (Bytes.unsafe_get t.slab byte) lsr shift) land 3 in
    let b = Bool.to_int taken in
    (* the lone mismatching code is [taken+1]: Taken(1) committed
       not-taken, or Not_taken(2) committed taken *)
    let base =
      if v = 3 then 0
      else if v <> b + 1 then 1 lor (v lsl 3)
      else record_alarm t pc taken v sequence
    in
    (* manually inlined row application (no flambda): most branches have
       an empty BAT row — one packed-row load and a test — and almost
       all nonempty rows hold a single node, so that first node is
       unrolled ahead of the loop *)
    let r = (slot * 2) + b in
    (* one packed row word gives offset and node count in a single load *)
    let rw = Array.unsafe_get t.top_rows r in
    let n = rw land 0xfffff in
    if n <> 0 then begin
      let lo = rw lsr 20 in
      let slab = t.slab in
      let nodes = t.top_nodes in
      let w = Array.unsafe_get nodes lo in
      let byte = off + (w lsr 18) in
      let cur = Char.code (Bytes.unsafe_get slab byte) in
      Bytes.unsafe_set slab byte
        (Char.unsafe_chr ((cur land ((w lsr 8) land 0xff)) lor (w land 0xff)));
      for i = lo + 1 to lo + n - 1 do
        let w = Array.unsafe_get nodes i in
        let byte = off + (w lsr 18) in
        let cur = Char.code (Bytes.unsafe_get slab byte) in
        Bytes.unsafe_set slab byte
          (Char.unsafe_chr
             ((cur land ((w lsr 8) land 0xff)) lor (w land 0xff)))
      done
    end;
    (* one packed delta update covers both the checked count (bit 0 of
       [base]) and the applied-node count *)
    let d = (n lsl 32) lor (base land 1) in
    if d <> 0 then t.d_cb <- t.d_cb + d;
    base lor (n lsl 5)
  end

let depth t = t.depth
let alarms t = List.rev t.alarms_rev
let alarm_count t = t.n_alarms

let last_alarm t =
  match t.alarms_rev with a :: _ -> Some a | [] -> None

(* Alarms recorded after the first [n], oldest first — O(fresh), not
   O(total), so a long trace's batch loop never rescans its history. *)
let alarms_since t n =
  let fresh = t.n_alarms - n in
  let rec take k acc rest =
    if k = 0 then acc
    else
      match rest with
      | [] -> acc
      | a :: tl -> take (k - 1) (a :: acc) tl
  in
  take fresh [] t.alarms_rev

let branches_seen t = t.branches

let status_at t slot =
  if t.depth = 0 then None
  else
    let img = t.top_img in
    if slot < 0 || slot >= img.Image.space then None
    else
      let byte = t.top_off + (slot lsr 2) in
      let shift = (slot land 3) * 2 in
      Some
        (Status.of_code
           ((Char.code (Bytes.get t.slab byte) lsr shift) land 3))

let expected_of_pc t pc =
  if t.depth = 0 then None
  else status_at t (Image.slot_of_pc t.top_img pc)

let current_statuses t =
  if t.depth = 0 then []
  else
    let img = t.top_img in
    let off = t.top_off in
    List.init img.Image.space (fun slot ->
        let byte = off + (slot lsr 2) in
        let shift = (slot land 3) * 2 in
        ( slot,
          Status.of_code
            ((Char.code (Bytes.get t.slab byte) lsr shift) land 3) ))
