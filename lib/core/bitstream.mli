(** Bit-granular serialization, for the packed table images the compiler
    attaches to the binary.  Fields are written/read LSB-first within a
    little-endian byte stream. *)

module Writer : sig
  type t

  val create : unit -> t
  val push : t -> width:int -> int -> unit
  (** Append [width] bits (0 ≤ width ≤ 62); the value must fit. *)

  val align_byte : t -> unit
  (** Pad with zero bits to the next byte boundary. *)

  val bits_written : t -> int
  val contents : t -> Bytes.t
end

module Reader : sig
  type t

  val of_bytes : Bytes.t -> t
  val pull : t -> width:int -> int
  (** Raises [Invalid_argument] when reading past the end. *)

  val align_byte : t -> unit
  val bits_read : t -> int
end
