(** Binary table images.

    The compiler "attaches BSVs, BCVs and BATs to the program binary" and
    conveys per-function metadata through a function information table
    (paper §5.4, Figure 6).  This module serializes a {!System.t} into
    that image and loads it back: per function, a byte-aligned metadata
    header (name, entry PC, hash parameters, node count) followed by the
    bit-packed BCV and BAT.  The packed payload is exactly
    {!Tables.sizes} minus the BSV (which is runtime state, initialized to
    all-unknown at activation).

    A checker built from a decoded image behaves identically to one built
    from the in-memory tables — tested property. *)

val function_image : entry_pc:int -> Tables.t -> Bytes.t
val decode_function : Bytes.t -> (int * Tables.t)
(** Inverse of {!function_image} (the debug-only [slot_of_iid] field is
    not serialized and comes back empty).  Raises [Invalid_argument] on a
    malformed image. *)

val decode_function_full : Bytes.t -> (int * Tables.t * Image.t)
(** Like {!decode_function}, but also returns the flat checker image
    the section decodes into (the tables are derived from it).  The
    image is structurally identical to [Image.of_tables] of the decoded
    tables. *)

val program_image : System.t -> Bytes.t
(** All functions, prefixed with a count. *)

val load_program : Bytes.t -> (string * (int * Tables.t)) list
(** [(fname, (entry_pc, tables))] for every function in the image. *)

val payload_bits : Tables.t -> int
(** Packed BCV+BAT bits — must equal
    [sizes.bcv_bits + sizes.bat_bits] (tested). *)
