type params = {
  shift1 : int;
  shift2 : int;
  space_bits : int;
}

let make ~shift1 ~shift2 ~space_bits =
  if shift1 < 1 || shift2 < 1 || space_bits < 0 || space_bits > 62 then
    invalid_arg "Hash.make: bad parameters";
  { shift1; shift2; space_bits }

let space p = 1 lsl p.space_bits

let apply p pc =
  let x = pc lsr 2 in
  let x = x lxor (x lsr p.shift1) in
  let x = x lxor ((x lsl p.shift2) land max_int) in
  x land (space p - 1)

let collision_free p pcs =
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun pc ->
      let h = apply p pc in
      if Hashtbl.mem seen h then false
      else begin
        Hashtbl.add seen h ();
        true
      end)
    pcs

let rec ceil_log2 n = if n <= 1 then 0 else 1 + ceil_log2 ((n + 1) / 2)

(* Tries a bounded set of shift pairs per space size, then grows the
   space; [k] counts candidates examined. *)
let search pcs =
  let n = List.length pcs in
  let exception Found of params * int in
  try
    let k = ref 0 in
    let bits = ref (max 1 (ceil_log2 n)) in
    while !bits <= 62 do
      for shift1 = 1 to 12 do
        for shift2 = 1 to 12 do
          let p = { shift1; shift2; space_bits = !bits } in
          incr k;
          if collision_free p pcs then raise (Found (p, !k))
        done
      done;
      incr bits
    done;
    (* Unreachable: with space >= n distinct keys some parameters always
       separate 4-byte-aligned PCs well before 2^62 slots. *)
    assert false
  with Found (p, k) -> (p, k)

let find pcs =
  match pcs with
  | [] -> { shift1 = 1; shift2 = 1; space_bits = 0 }
  | _ :: _ -> fst (search pcs)

let attempts_for pcs =
  match pcs with
  | [] -> 0
  | _ :: _ -> snd (search pcs)

let pp ppf p =
  Format.fprintf ppf "hash(s1=%d, s2=%d, space=%d)" p.shift1 p.shift2 (space p)
