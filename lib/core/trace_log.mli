(** Human-readable log of the checker's per-branch decisions.

    Wraps a {!Checker.t}; every committed branch produces one line:
    expected status, actual direction, verdict, and the BAT actions
    applied.  Used by [ipds trace] and handy when writing new analyses
    ("why did this branch stop being checked?"). *)

type t

val create : lookup:(string -> Image.t) -> out:(string -> unit) -> t
(** [out] receives one line per event (without trailing newline). *)

val checker : t -> Checker.t
(** The underlying checker (attach it to the interpreter). *)

val on_call : t -> string -> unit
val on_return : t -> unit
val on_branch : t -> pc:int -> taken:bool -> Checker.verdict
(** Drive these instead of the underlying checker's hooks to get the
    log; they delegate. *)
