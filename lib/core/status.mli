(** Branch Status Vector entries: the expected direction of a branch's
    next dynamic instance (2 bits in hardware). *)

type t =
  | Taken
  | Not_taken
  | Unknown

val matches : t -> bool -> bool
(** [matches expected actual] — [Unknown] matches any direction. *)

val of_action : Ipds_correlation.Action.t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_char : t -> char
