(** Branch Status Vector entries: the expected direction of a branch's
    next dynamic instance (2 bits in hardware). *)

type t =
  | Taken
  | Not_taken
  | Unknown

val matches : t -> bool -> bool
(** [matches expected actual] — [Unknown] matches any direction. *)

val of_action : Ipds_correlation.Action.t -> t

val to_code : t -> int
(** 2-bit packed code: [Unknown] = 0 (so zero-filled = all-unknown),
    [Taken] = 1, [Not_taken] = 2.  This is the flat-image BSV encoding,
    distinct from the wire action codes in {!Encode}. *)

val of_code : int -> t
(** Inverse of {!to_code}; unassigned codes decode to [Unknown]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_char : t -> char
