(** Per-function BSV/BCV/BAT binary layouts (paper §5.1–5.2).

    Slots are hash positions of branch PCs under a collision-free
    function-specific hash.  The BAT is a head-pointer array indexed by
    (slot, direction) into a node pool of (target-slot, action, next)
    records — "the BAT table implements a link list" — plus one extra row
    of entry actions applied when an activation starts.

    {!sizes} reports the exact bit cost of each structure, which is what
    Figure 8 of the paper measures (averages: BSV 34, BCV 17, BAT 393). *)

type bat_entry = {
  target_slot : int;
  action : Ipds_correlation.Action.t;
}

type t = {
  fname : string;
  hash : Hash.params;
  n_branches : int;
  bcv : bool array;  (** indexed by slot *)
  bat : bat_entry list array;  (** indexed by [slot * 2 + dir]; dir 1 = taken *)
  entry_row : bat_entry list;
  slot_of_iid : int array;
      (** dense branch-iid → slot map (-1 for non-branch iids), for
          debugging/inspection; O(1) lookup via {!slot_for_iid} *)
}

val slot_for_iid : t -> int -> int option
(** O(1) slot of a branch iid; [None] for non-branch iids (and for
    tables decoded from an image, where the map is not serialized). *)

val slot_map : int list -> (int -> int) -> int array
(** [slot_map branch_iids slot]: the dense [slot_of_iid] array.  The
    artifact loader uses this to rebuild the map after decoding. *)

val build :
  layout:Ipds_mir.Layout.t -> Ipds_correlation.Analysis.result -> t

type sizes = {
  bsv_bits : int;
  bcv_bits : int;
  bat_bits : int;
}

val sizes : t -> sizes
(** BSV: 2 bits/slot.  BCV: 1 bit/slot.  BAT: head pointers for
    [2*space + 1] rows plus nodes of (target-slot, 2-bit action, next
    pointer); pointer width is [ceil log2 (nodes + 1)]. *)

val slot_of_pc : t -> int -> int
val pp : Format.formatter -> t -> unit
