(** The whole IPDS compile-side pipeline: correlation analysis, table
    construction and the function information table (paper Figure 6).

    The pipeline is expressed as declared {!Ipds_pass.Pass} stages —
    [layout] and [prepare] are program-wide, [digest], [analyze] and
    [tables] are per-function — so every build is timed and counted
    per pass, and the per-function stages can fan out over an
    {!Ipds_parallel.Pool} or be skipped entirely on an incremental
    cache hit. *)

type func_info = {
  entry_pc : int;
  digest : string;
      (** hex content digest of everything the per-function stage can
          observe; keys the incremental per-function artifact cache *)
  tables : Tables.t;
  image : Image.t;
      (** compiled flat checker image; built once here (or decoded
          straight from the artifact section) so every checker shares
          it *)
  result : Ipds_correlation.Analysis.result;
  refine : Ipds_correlation.Refine.stats option;
      (** present iff this build ran the refine pass (precision on);
          build-time telemetry only — not serialized into artifacts, so
          loaded [func_info]s carry [None] *)
}

type t = {
  program : Ipds_mir.Program.t;
  layout : Ipds_mir.Layout.t;
  funcs : (string * func_info) list;
      (** deterministic program order — printing and stats iterate this *)
  by_name : (string, func_info) Hashtbl.t;
      (** O(1) lookups for the checker; always construct via {!make} so
          it stays consistent with [funcs] *)
}

val make :
  program:Ipds_mir.Program.t ->
  layout:Ipds_mir.Layout.t ->
  funcs:(string * func_info) list ->
  t
(** The only way to assemble a [t] by hand (artifact loading); derives
    [by_name] from [funcs]. *)

val func_digest :
  options:Ipds_correlation.Analysis.options ->
  layout:Ipds_mir.Layout.t ->
  Ipds_correlation.Context.program_wide ->
  Ipds_mir.Func.t ->
  string
(** Content digest of (printed body, base PC, program-wide slice,
    options).  Two builds assign a function the same digest exactly
    when its analysis and tables are guaranteed byte-identical. *)

type func_cache = {
  lookup :
    digest:string ->
    layout:Ipds_mir.Layout.t ->
    Ipds_mir.Func.t ->
    func_info option;
  publish : digest:string -> func_info -> unit;
}
(** Hooks the artifact layer plugs into {!build}: [lookup] may return a
    previously published [func_info] for the same digest (skipping the
    analyze/tables passes for that function), [publish] is called for
    every freshly analyzed function. *)

val build :
  ?options:Ipds_correlation.Analysis.options ->
  ?pool:Ipds_parallel.Pool.t ->
  ?func_cache:func_cache ->
  Ipds_mir.Program.t ->
  t
(** Run the pipeline.  The per-function stage fans out over [pool]
    (order-preserving, so the result is bit-identical to the
    sequential build for any job count) and consults [func_cache]
    before analyzing each function. *)

val cached_build :
  ?options:Ipds_correlation.Analysis.options ->
  ?pool:Ipds_parallel.Pool.t ->
  Ipds_mir.Program.t ->
  t
(** Like {!build} but memoised — domain-safe and exactly-once, so every
    experiment in a bench run shares one analysis + table construction
    per configuration.  The memo key is a content digest of the printed
    program and the option fingerprint, so omitted [options] and
    explicit default options share an entry. *)

val build_count : unit -> int
(** How many (non-cached) builds have actually run in this process. *)

val seed_cache :
  ?options:Ipds_correlation.Analysis.options -> Ipds_mir.Program.t -> t -> unit
(** Pre-populate the {!cached_build} memo with a system obtained
    elsewhere (an on-disk artifact), so later [cached_build] calls for
    the same program return it without analyzing.  A no-op when an
    entry already exists; does not bump {!build_count}. *)

val info : t -> string -> func_info
(** Raises [Invalid_argument] for unknown functions. *)

val mem : t -> string -> bool
(** Is the function defined in this system?  The verdict server uses
    this to distinguish calls to defined functions (which push checker
    frames) from extern calls (which the inline checker never sees). *)

val tables : t -> string -> Tables.t
(** Raises [Invalid_argument] for unknown functions. *)

val image : t -> string -> Image.t
(** Raises [Invalid_argument] for unknown functions. *)

val new_checker : t -> Checker.t
(** A fresh checker over this system's flat images. *)

val new_ref_checker : t -> Checker_ref.t
(** A fresh reference (list-based) checker — differential tests and the
    throughput bench baseline. *)

type size_stats = {
  per_func : (string * Tables.sizes) list;
  avg_bsv_bits : float;
  avg_bcv_bits : float;
  avg_bat_bits : float;
}

val size_stats : t -> size_stats
(** The Figure 8 measurement: average per-function table sizes in bits. *)

val checked_branch_count : t -> int
val total_branch_count : t -> int
