(** The whole IPDS compile-side pipeline: correlation analysis, table
    construction and the function information table (paper Figure 6). *)

type func_info = {
  entry_pc : int;
  tables : Tables.t;
  result : Ipds_correlation.Analysis.result;
}

type t = {
  program : Ipds_mir.Program.t;
  layout : Ipds_mir.Layout.t;
  funcs : (string * func_info) list;
}

val build :
  ?options:Ipds_correlation.Analysis.options -> Ipds_mir.Program.t -> t

val cached_build :
  ?options:Ipds_correlation.Analysis.options -> Ipds_mir.Program.t -> t
(** Like {!build} but memoised per [(program, options)] — domain-safe
    and exactly-once, so every experiment in a bench run shares one
    analysis + table construction per configuration.  Omitted [options]
    and explicit default options share a cache entry. *)

val build_count : unit -> int
(** How many (non-cached) builds have actually run in this process. *)

val seed_cache :
  ?options:Ipds_correlation.Analysis.options -> Ipds_mir.Program.t -> t -> unit
(** Pre-populate the {!cached_build} memo with a system obtained
    elsewhere (an on-disk artifact), so later [cached_build] calls for
    the same [(program, options)] return it without analyzing.  A
    no-op when an entry already exists; does not bump
    {!build_count}. *)

val tables : t -> string -> Tables.t
(** Raises [Invalid_argument] for unknown functions. *)

val new_checker : t -> Checker.t

type size_stats = {
  per_func : (string * Tables.sizes) list;
  avg_bsv_bits : float;
  avg_bcv_bits : float;
  avg_bat_bits : float;
}

val size_stats : t -> size_stats
(** The Figure 8 measurement: average per-function table sizes in bits. *)

val checked_branch_count : t -> int
val total_branch_count : t -> int
