module Writer = struct
  type t = {
    mutable buf : Bytes.t;
    mutable bit : int;  (* next bit position *)
  }

  let create () = { buf = Bytes.make 64 '\000'; bit = 0 }

  let ensure t bits =
    let needed = (t.bit + bits + 7) / 8 in
    if needed > Bytes.length t.buf then begin
      let bigger = Bytes.make (max needed (2 * Bytes.length t.buf)) '\000' in
      Bytes.blit t.buf 0 bigger 0 (Bytes.length t.buf);
      t.buf <- bigger
    end

  let push t ~width v =
    if width < 0 || width > 62 then invalid_arg "Bitstream.push: bad width";
    if v < 0 || (width < 62 && v lsr width <> 0) then
      invalid_arg (Printf.sprintf "Bitstream.push: %d does not fit in %d bits" v width);
    ensure t width;
    for k = 0 to width - 1 do
      if (v lsr k) land 1 = 1 then begin
        let pos = t.bit + k in
        let byte = Bytes.get_uint8 t.buf (pos / 8) in
        Bytes.set_uint8 t.buf (pos / 8) (byte lor (1 lsl (pos mod 8)))
      end
    done;
    t.bit <- t.bit + width

  let align_byte t = t.bit <- (t.bit + 7) / 8 * 8

  let bits_written t = t.bit
  let contents t = Bytes.sub t.buf 0 ((t.bit + 7) / 8)
end

module Reader = struct
  type t = {
    buf : Bytes.t;
    mutable bit : int;
  }

  let of_bytes buf = { buf; bit = 0 }

  let pull t ~width =
    if width < 0 || width > 62 then invalid_arg "Bitstream.pull: bad width";
    if t.bit + width > 8 * Bytes.length t.buf then
      invalid_arg "Bitstream.pull: past end of stream";
    let v = ref 0 in
    for k = 0 to width - 1 do
      let pos = t.bit + k in
      let byte = Bytes.get_uint8 t.buf (pos / 8) in
      if (byte lsr (pos mod 8)) land 1 = 1 then v := !v lor (1 lsl k)
    done;
    t.bit <- t.bit + width;
    !v

  let align_byte t = t.bit <- (t.bit + 7) / 8 * 8
  let bits_read t = t.bit
end
