(** The IPDS runtime checking engine (paper §5.4).

    Keeps a stack of per-activation BSVs mirroring the call stack: entering
    a function pushes a fresh all-Unknown status vector (and applies the
    function's entry actions); returning pops it.  Every committed
    conditional branch is verified against its expected status and then
    drives BAT updates.

    The checker never stops on an alarm — it records it and continues, so
    one run can report every infeasible-path violation it sees (the
    hardware would trap on the first). *)

type alarm = {
  fname : string;
  branch_pc : int;
  expected : Status.t;
  actual_taken : bool;
  sequence : int;  (** how many branches had committed before this one *)
}

type check_info = {
  alarm : alarm option;
  was_checked : bool;  (** the branch was marked in the BCV *)
  bat_nodes : int;  (** BAT list nodes walked for the update *)
}

type t

val create : lookup:(string -> Tables.t) -> t
val on_call : t -> string -> int
(** Push an activation; returns the number of entry actions applied. *)

val on_return : t -> unit
(** Raises [Invalid_argument] when the stack is empty. *)

val on_branch : t -> pc:int -> taken:bool -> check_info
(** Verify-then-update for a committed conditional branch of the current
    (top-of-stack) activation. *)

val depth : t -> int
val alarms : t -> alarm list
(** All alarms so far, in commit order. *)

val branches_seen : t -> int
val current_statuses : t -> (int * Status.t) list
(** (slot, status) of the top activation, for inspection/debugging. *)
