(** The IPDS runtime checking engine (paper §5.4).

    Keeps a stack of per-activation BSVs mirroring the call stack:
    entering a function pushes a fresh all-Unknown status vector (and
    applies the function's entry actions); returning pops it.  Every
    committed conditional branch is verified against its expected status
    and then drives BAT updates.

    The implementation is allocation-free on the hot path: activations
    live in a preallocated growable arena (a flat {!Image.t} array plus
    a 2-bit-packed BSV byte slab), branch verdicts are packed ints, and
    the stable [checker.*] counters are accumulated locally and flushed
    to the registry when the stack empties or on {!flush}.  A
    steady-state checked branch allocates zero minor words — regression
    tested.

    The checker never stops on an alarm — it records it and continues,
    so one run can report every infeasible-path violation it sees (the
    hardware would trap on the first). *)

type alarm = {
  fname : string;
  branch_pc : int;
  expected : Status.t;
  actual_taken : bool;
  sequence : int;  (** how many branches had committed before this one *)
}

type verdict = int
(** Packed branch verdict; decode with the accessors below.  Never
    allocated on the ok path. *)

val verdict_checked : verdict -> bool
(** The branch was marked in the BCV. *)

val verdict_alarm : verdict -> bool
(** Status mismatch; the alarm was recorded (see {!last_alarm}). *)

val verdict_violation : verdict -> bool
(** Protocol violation: a branch arrived with no active frame.  The
    typed replacement for the old hot-path exception — the interpreter
    maps it to its existing fault handling. *)

val verdict_ok : verdict -> bool
(** Neither alarm nor violation. *)

val verdict_expected : verdict -> Status.t
(** The expected status consulted ([Unknown] for unchecked branches). *)

val verdict_bat_nodes : verdict -> int
(** BAT nodes applied by the update. *)

type t

val create : lookup:(string -> Image.t) -> t
val on_call : t -> string -> int
(** Push an activation; returns the number of entry actions applied. *)

val on_call_img : t -> Image.t -> int
(** {!on_call} with the image handle already resolved — skips the name
    lookup for callers that cache handles (the bench replay harness, or
    a loader that resolves call sites once). *)

val on_return : t -> bool
(** Pop an activation.  [false] — and no state change — when the stack
    is empty (the typed replacement for the old [Invalid_argument]). *)

val on_branch : t -> pc:int -> taken:bool -> verdict
(** Verify-then-update for a committed conditional branch of the
    current (top-of-stack) activation. *)

val depth : t -> int
(** O(1). *)

val alarms : t -> alarm list
(** All alarms so far, in commit order. *)

val alarm_count : t -> int
(** O(1). *)

val alarms_since : t -> int -> alarm list
(** [alarms_since t n]: alarms recorded after the first [n], in commit
    order.  O(fresh alarms), for batch loops over long traces. *)

val last_alarm : t -> alarm option
(** The most recent alarm (the one a just-returned alarm verdict
    recorded). *)

val branches_seen : t -> int

val flush : t -> unit
(** Flush locally accumulated [checker.*] counter deltas to the
    registry.  Called automatically when the activation stack empties;
    call it explicitly when a trace is abandoned mid-flight (the
    interpreter, pipeline and verdict server all do). *)

val status_at : t -> int -> Status.t option
(** Status of [slot] in the top activation; [None] with no active frame
    or out-of-range slot. *)

val expected_of_pc : t -> int -> Status.t option
(** Status the top activation holds for [pc]'s slot. *)

val current_statuses : t -> (int * Status.t) list
(** (slot, status) of the top activation, for inspection/debugging;
    empty with no active frame.  Reads the packed BSV directly. *)
