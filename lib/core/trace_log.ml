type t = {
  inner : Checker.t;
  lookup : string -> Tables.t;
  out : string -> unit;
  mutable stack : string list;  (* function names, innermost first *)
}

let create ~lookup ~out = { inner = Checker.create ~lookup; lookup; out; stack = [] }
let checker t = t.inner

let on_call t fname =
  t.stack <- fname :: t.stack;
  let n = Checker.on_call t.inner fname in
  t.out (Printf.sprintf "call %s (%d entry actions)" fname n)

let on_return t =
  (match t.stack with
  | f :: rest ->
      t.stack <- rest;
      t.out (Printf.sprintf "ret  %s" f)
  | [] -> ());
  Checker.on_return t.inner

let status_before t pc =
  match t.stack with
  | [] -> None
  | fname :: _ ->
      let tables = t.lookup fname in
      let slot = Tables.slot_of_pc tables pc in
      List.assoc_opt slot (Checker.current_statuses t.inner)

let on_branch t ~pc ~taken =
  let before = status_before t pc in
  let info = Checker.on_branch t.inner ~pc ~taken in
  let expected =
    match before with
    | Some s -> Format.asprintf "%a" Status.pp s
    | None -> "?"
  in
  let verdict =
    match info.Checker.alarm with
    | Some _ -> "ALARM"
    | None -> if info.Checker.was_checked then "ok" else "unchecked"
  in
  t.out
    (Printf.sprintf "br   pc=0x%x %s expected=%s -> %s (%d BAT nodes)" pc
       (if taken then "taken" else "not-taken")
       expected verdict info.Checker.bat_nodes);
  info
