type t = {
  inner : Checker.t;
  out : string -> unit;
  mutable stack : string list;  (* function names, innermost first *)
}

let create ~lookup ~out = { inner = Checker.create ~lookup; out; stack = [] }
let checker t = t.inner

let on_call t fname =
  t.stack <- fname :: t.stack;
  let n = Checker.on_call t.inner fname in
  t.out (Printf.sprintf "call %s (%d entry actions)" fname n)

let on_return t =
  (match t.stack with
  | f :: rest ->
      t.stack <- rest;
      t.out (Printf.sprintf "ret  %s" f)
  | [] -> ());
  ignore (Checker.on_return t.inner)

let on_branch t ~pc ~taken =
  (* the status consulted is the one armed before the BAT update *)
  let before = Checker.expected_of_pc t.inner pc in
  let v = Checker.on_branch t.inner ~pc ~taken in
  let expected =
    match before with
    | Some s -> Format.asprintf "%a" Status.pp s
    | None -> "?"
  in
  let verdict =
    if Checker.verdict_alarm v then "ALARM"
    else if Checker.verdict_violation v then "VIOLATION"
    else if Checker.verdict_checked v then "ok"
    else "unchecked"
  in
  t.out
    (Printf.sprintf "br   pc=0x%x %s expected=%s -> %s (%d BAT nodes)" pc
       (if taken then "taken" else "not-taken")
       expected verdict
       (Checker.verdict_bat_nodes v));
  v
