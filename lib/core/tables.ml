module Mir = Ipds_mir
module Corr = Ipds_correlation

type bat_entry = {
  target_slot : int;
  action : Corr.Action.t;
}

type t = {
  fname : string;
  hash : Hash.params;
  n_branches : int;
  bcv : bool array;
  bat : bat_entry list array;
  entry_row : bat_entry list;
  slot_of_iid : int array;
}

let slot_map iids slot =
  match iids with
  | [] -> [||]
  | _ ->
      let arr = Array.make (1 + List.fold_left max 0 iids) (-1) in
      List.iter (fun iid -> arr.(iid) <- slot iid) iids;
      arr

let slot_for_iid t iid =
  if iid < 0 || iid >= Array.length t.slot_of_iid || t.slot_of_iid.(iid) < 0
  then None
  else Some t.slot_of_iid.(iid)

let build ~layout (r : Corr.Analysis.result) =
  let fname = r.func.Mir.Func.name in
  let branch_iids = List.map fst (Mir.Func.branches r.func) in
  let pc_of iid = Mir.Layout.pc layout ~fname ~iid in
  let hash = Hash.find (List.map pc_of branch_iids) in
  let slot iid = Hash.apply hash (pc_of iid) in
  let space = Hash.space hash in
  let bcv = Array.make space false in
  List.iter (fun iid -> bcv.(slot iid) <- true) r.checked;
  let bat = Array.make (2 * space) [] in
  List.iter
    (fun ((bs, dir), actions) ->
      let row = (slot bs * 2) + if dir then 1 else 0 in
      bat.(row) <-
        List.map (fun (tgt, action) -> { target_slot = slot tgt; action }) actions)
    r.edge_actions;
  let entry_row =
    List.map (fun (tgt, action) -> { target_slot = slot tgt; action }) r.entry_actions
  in
  {
    fname;
    hash;
    n_branches = List.length branch_iids;
    bcv;
    bat;
    entry_row;
    slot_of_iid = slot_map branch_iids slot;
  }

type sizes = {
  bsv_bits : int;
  bcv_bits : int;
  bat_bits : int;
}

let rec ceil_log2 n = if n <= 1 then 0 else 1 + ceil_log2 ((n + 1) / 2)

let sizes t =
  let space = Hash.space t.hash in
  let n_nodes =
    Array.fold_left (fun acc row -> acc + List.length row) (List.length t.entry_row)
      t.bat
  in
  let ptr_bits = max 1 (ceil_log2 (n_nodes + 1)) in
  let slot_bits = max 1 t.hash.Hash.space_bits in
  let head_bits = ((2 * space) + 1) * ptr_bits in
  let node_bits = n_nodes * (slot_bits + 2 + ptr_bits) in
  {
    bsv_bits = 2 * space;
    bcv_bits = space;
    bat_bits = head_bits + node_bits;
  }

let slot_of_pc t pc = Hash.apply t.hash pc

let pp ppf t =
  Format.fprintf ppf "@[<v>tables %s: %d branches, %a@," t.fname t.n_branches
    Hash.pp t.hash;
  let s = sizes t in
  Format.fprintf ppf "  bsv %d bits, bcv %d bits, bat %d bits@]" s.bsv_bits
    s.bcv_bits s.bat_bits
