(** Collision-free branch-PC hashing (paper §5.2).

    The tables are indexed by hashed branch addresses.  To avoid storing
    tags, the compiler searches a parameterisable shift-XOR hash family
    for parameters that map the function's branch PCs into the hash space
    without collision, growing the space when the search fails.  The same
    parameters are shipped to the runtime in the function information
    table. *)

type params = private {
  shift1 : int;  (** right-shift feedback *)
  shift2 : int;  (** left-shift feedback *)
  space_bits : int;  (** hash space is [2^space_bits] slots *)
}

val make : shift1:int -> shift2:int -> space_bits:int -> params
(** For reloading parameters shipped in a binary image; raises
    [Invalid_argument] on nonsensical values. *)

val space : params -> int
val apply : params -> int -> int
(** [apply p pc] ∈ [0, space p). *)

val find : int list -> params
(** Collision-free parameters for the given (distinct) branch PCs.  Grows
    the space until the search succeeds, so it always returns; the space
    never needs to exceed a few times the branch count in practice. *)

val attempts_for : int list -> int
(** How many (shift1, shift2, space) candidates the search for [find]
    examined — the paper's "trial-and-error" cost, reported by the
    compile-time experiment. *)

val pp : Format.formatter -> params -> unit
