(** Compiled flat per-function checker image.

    {!Tables.t} is the build/inspect representation: BAT rows are entry
    lists and the BCV a [bool array].  The checker's hot path instead
    runs over this flat image — BCV as an int-array bitset, the BAT as
    packed CSR row words + packed node arrays, and the hash parameters
    inlined as plain ints — so verifying and updating a committed branch
    touches no list node and allocates nothing.

    Node words pack
    [(target_slot lsl 16) lor (keep_mask lsl 8) lor set_mask]: the two
    byte masks pre-resolve the 2-bit {!Status.to_code} write into slab
    byte [target_slot lsr 2], so applying a node is a constant-shift
    load/and/or/store.  Per-activation BSV slabs are seeded
    from [init_bsv], which merges the BCV into the 2-bit entries: code 3
    marks an unchecked slot, codes 0-2 are the statuses of checked
    slots — one slab read answers both "is this branch checked" and
    "what direction is expected". *)

type t = private {
  fname : string;
  shift1 : int;
  shift2 : int;
  space_bits : int;
  mask : int;  (** [space - 1] *)
  space : int;
  n_branches : int;
  bcv : int array;  (** bitset; slot [s] is bit [s land 31] of word [s lsr 5] *)
  rows : int array;
      (** packed CSR rows, length [2*space + 1]: word [i] is
          [(offset lsl 20) lor length] of row [i]'s slice of [nodes] —
          row [slot*2 + dir] per edge, row [2*space] for entry actions.
          One load gives the branch path a row's start and node count. *)
  nodes : int array;
      (** [(target_slot lsl 16) lor (keep_mask lsl 8) lor set_mask] *)
  init_bsv : Bytes.t;
      (** fresh-activation slab image: code 0 for checked slots, 3 for
          unchecked ones; length {!bsv_bytes} *)
}

val of_tables : Tables.t -> t
(** Compile the list representation.  Node order follows the
    serialization order of {!Encode} (edge rows then entry row, entries
    in list order), so images built from tables and images decoded from
    artifacts are structurally equal. *)

val to_tables : t -> Tables.t
(** The inspect-side list view (debug [slot_of_iid] comes back empty).
    [to_tables (of_tables t)] equals [t] up to that field. *)

val empty : t
(** A zero-branch placeholder (used to blank arena slots). *)

val slot_of_pc : t -> int -> int
(** The collision-free hash, inlined — no [Hash.params] load. *)

val checked : t -> int -> bool
(** Is [slot] set in the BCV? *)

val entry_row_index : t -> int
val bsv_bytes : t -> int
(** Bytes of 2-bit-packed BSV one activation of this function needs. *)

val node_word : target_slot:int -> code:int -> int
val node_slot : int -> int
val node_code : int -> int

val row_word : off:int -> len:int -> int
val row_off : int -> int
val row_len : int -> int
(** Pack/unpack one [rows] word. *)

val validate : t -> unit
(** Structural sanity for decoded images (rows tile the node array
    exactly, node slots inside the hash space and marked in the BCV —
    the invariant the merged slab encoding relies on).  Raises
    [Invalid_argument]. *)

val make :
  fname:string ->
  hash:Hash.params ->
  n_branches:int ->
  bcv:int array ->
  row_off:int array ->
  nodes:int array ->
  t
(** Assemble (and {!validate}) an image from decoded artifact sections;
    [row_off] is the serialized CSR offset table (length [2*space + 2],
    final entry the sentinel), packed into [rows] here.  Raises
    [Invalid_argument] on a structurally broken image. *)
