module Mir = Ipds_mir
module Int_set = Set.Make (Int)

type t = {
  vars : Mir.Var.Set.t;
  params : Int_set.t;
  unknown : bool;
}

let empty = { vars = Mir.Var.Set.empty; params = Int_set.empty; unknown = false }
let unknown = { empty with unknown = true }
let of_var v = { empty with vars = Mir.Var.Set.singleton v }
let of_param i = { empty with params = Int_set.singleton i }

let union a b =
  {
    vars = Mir.Var.Set.union a.vars b.vars;
    params = Int_set.union a.params b.params;
    unknown = a.unknown || b.unknown;
  }

let equal a b =
  Mir.Var.Set.equal a.vars b.vars
  && Int_set.equal a.params b.params
  && Bool.equal a.unknown b.unknown

let is_empty t =
  Mir.Var.Set.is_empty t.vars && Int_set.is_empty t.params && not t.unknown

let subsumes_anything t = t.unknown || not (Int_set.is_empty t.params)

(* Canonical rendering for content digests: variable ids (program-wide
   unique) rather than names, so renamings that change binding structure
   cannot collide. *)
let render t =
  Printf.sprintf "v[%s]p[%s]%c"
    (String.concat ","
       (List.map
          (fun v -> string_of_int v.Mir.Var.id)
          (Mir.Var.Set.elements t.vars)))
    (String.concat "," (List.map string_of_int (Int_set.elements t.params)))
    (if t.unknown then '?' else '.')

let pp ppf t =
  let items =
    List.map (fun v -> v.Mir.Var.name) (Mir.Var.Set.elements t.vars)
    @ List.map (Printf.sprintf "param%d") (Int_set.elements t.params)
    @ (if t.unknown then [ "?" ] else [])
  in
  Format.fprintf ppf "{%s}" (String.concat ", " items)
