module Mir = Ipds_mir

type target =
  | No_target
  | Exact of Cell.t
  | Within of Mir.Var.Set.t

let pp_target ppf = function
  | No_target -> Format.pp_print_string ppf "nothing"
  | Exact c -> Cell.pp ppf c
  | Within vs ->
      Format.fprintf ppf "within{%s}"
        (String.concat ", "
           (List.map (fun v -> v.Mir.Var.name) (Mir.Var.Set.elements vs)))

type t = {
  program : Mir.Program.t;
  points_to : Points_to.t;
  summaries : string -> Summary.t;
  func : Mir.Func.t;
  globals : Mir.Var.Set.t;
  locals : Mir.Var.Set.t;
}

let make program points_to ~summaries (func : Mir.Func.t) =
  let set_of vs = List.fold_left (fun s v -> Mir.Var.Set.add v s) Mir.Var.Set.empty vs in
  {
    program;
    points_to;
    summaries;
    func;
    globals = set_of program.globals;
    locals = set_of func.locals;
  }

let wrap_index (v : Mir.Var.t) i =
  let m = i mod v.size in
  if m < 0 then m + v.size else m

(* Pointees of a points-to set, seen from this function: named variables
   directly; parameter pointees may alias address-taken globals (they
   cannot alias the current frame, which postdates them); unknown pointees
   may alias anything address-taken. *)
let pointee_vars t (pts : Pt_set.t) =
  let taken = Points_to.address_taken t.points_to in
  let base = pts.vars in
  let base =
    if not (Pt_set.Int_set.is_empty pts.params) then
      Mir.Var.Set.union base (Mir.Var.Set.inter taken t.globals)
    else base
  in
  if pts.unknown then Mir.Var.Set.union base taken else base

let target_of_vars vs =
  if Mir.Var.Set.is_empty vs then No_target
  else
    match Mir.Var.Set.elements vs with
    | [ v ] when Mir.Var.is_scalar v -> Exact (Cell.of_scalar v)
    | _ :: _ | [] -> Within vs

let addr_target t = function
  | Mir.Addr.Direct v -> Exact (Cell.make v 0)
  | Mir.Addr.Index (v, Mir.Operand.Imm i) -> Exact (Cell.make v (wrap_index v i))
  | Mir.Addr.Index (v, Mir.Operand.Reg _) -> Within (Mir.Var.Set.singleton v)
  | Mir.Addr.Indirect r ->
      let pts = Points_to.reg t.points_to ~fname:t.func.Mir.Func.name r in
      target_of_vars (pointee_vars t pts)

let operand_pts t (o : Mir.Operand.t) =
  match o with
  | Mir.Operand.Reg r -> Points_to.reg t.points_to ~fname:t.func.Mir.Func.name r
  | Mir.Operand.Imm _ -> Pt_set.empty

(* A summary's effect instantiated at a call site, restricted to the
   variables visible in this function (own locals and globals). *)
let call_target t callee args =
  let s = t.summaries callee in
  if s.Summary.any then
    (* The paper's wildcard pseudo-store: the call may modify any
       variable. *)
    target_of_vars (Mir.Var.Set.union t.globals t.locals)
  else begin
    let arg_pointees =
      Pt_set.Int_set.fold
        (fun pos acc ->
          match List.nth_opt args pos with
          | Some o -> Mir.Var.Set.union acc (pointee_vars t (operand_pts t o))
          | None -> acc)
        s.Summary.args Mir.Var.Set.empty
    in
    let visible_foreign =
      Mir.Var.Set.inter s.Summary.foreign_vars
        (Mir.Var.Set.union t.locals t.globals)
    in
    target_of_vars
      (Mir.Var.Set.union arg_pointees
         (Mir.Var.Set.union s.Summary.globals visible_foreign))
  end

let may_defs t = function
  | Mir.Op.Store (a, _) -> addr_target t a
  | Mir.Op.Call { callee; args; _ } -> call_target t callee args
  | Mir.Op.Const _ | Mir.Op.Move _ | Mir.Op.Binop _ | Mir.Op.Load _
  | Mir.Op.Addr_of _ | Mir.Op.Input _ | Mir.Op.Output _ | Mir.Op.Nop ->
      No_target

let may_touch target cell =
  match target with
  | No_target -> false
  | Exact c -> Cell.equal c cell
  | Within vs -> Mir.Var.Set.mem cell.Cell.var vs
