module Mir = Ipds_mir

type t = {
  var : Mir.Var.t;
  index : int;
}

let make var index =
  if index < 0 || index >= var.Mir.Var.size then
    invalid_arg
      (Printf.sprintf "Cell.make: index %d out of bounds for %s" index
         var.Mir.Var.name);
  { var; index }

let of_scalar var =
  if not (Mir.Var.is_scalar var) then invalid_arg "Cell.of_scalar: array variable";
  { var; index = 0 }

let equal a b = Mir.Var.equal a.var b.var && Int.equal a.index b.index

let compare a b =
  match Mir.Var.compare a.var b.var with
  | 0 -> Int.compare a.index b.index
  | c -> c

let pp ppf t =
  if Mir.Var.is_scalar t.var then Format.fprintf ppf "%s" t.var.Mir.Var.name
  else Format.fprintf ppf "%s[%d]" t.var.Mir.Var.name t.index

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
