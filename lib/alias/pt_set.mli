(** Points-to sets: what a register's pointer value may reference.

    Elements are variables (from address-of), formal-parameter pointees
    (opaque caller memory) and "unknown" (values laundered through defined
    calls or loaded pointer stores). *)

module Int_set : Set.S with type elt = int

type t = {
  vars : Ipds_mir.Var.Set.t;
  params : Int_set.t;  (** formal parameter positions *)
  unknown : bool;
}

val empty : t
val unknown : t
val of_var : Ipds_mir.Var.t -> t
val of_param : int -> t
val union : t -> t -> t
val equal : t -> t -> bool
val is_empty : t -> bool
val subsumes_anything : t -> bool
(** True when a dereference through this set may touch arbitrary
    address-taken memory ([unknown] or any parameter pointee). *)

val render : t -> string
(** Canonical digest-stable rendering (variable ids, sorted). *)

val pp : Format.formatter -> t -> unit
