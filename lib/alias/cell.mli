(** Memory cells: one integer slot of a variable.

    The correlation analysis tracks values at cell granularity, so scalar
    variables and constant-indexed array slots are individually trackable
    while variably-indexed accesses fall back to whole-variable may-sets. *)

type t = {
  var : Ipds_mir.Var.t;
  index : int;  (** [0 <= index < var.size] *)
}

val make : Ipds_mir.Var.t -> int -> t
(** Raises [Invalid_argument] if the index is out of the variable's
    bounds. *)

val of_scalar : Ipds_mir.Var.t -> t
(** The single cell of a scalar variable.  Raises [Invalid_argument] for
    arrays. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
