(** Whole-program flow-insensitive points-to analysis.

    Pointer values originate only from [Addr_of] (the machine's value model
    carries provenance, so integer arithmetic can never forge a pointer —
    see [Ipds_machine.Value]).  Pointers propagate through moves, pointer
    arithmetic, stores/loads (via a program-wide escape set) and calls
    (conservatively unknown).  This mirrors the "publicly available pointer
    analysis pass for SUIF" [27] the paper plugs in, adapted to MIR. *)

type t

val compute : Ipds_mir.Program.t -> t

val reg : t -> fname:string -> Ipds_mir.Reg.t -> Pt_set.t
(** Flow-insensitive points-to set of a register in a function. *)

val escaped : t -> Pt_set.t
(** Pointer values that may be stored in memory somewhere in the
    program (what a load may hand back as a pointer). *)

val address_taken : t -> Ipds_mir.Var.Set.t
(** Variables whose address is ever taken; the possible targets of an
    unknown dereference. *)

val func_fingerprint : t -> fname:string -> string
(** Hex digest of the slice of the solution observable from one
    function: its register points-to sets, the program-wide escape set
    and the address-taken set.  Part of the per-function content digest
    that keys the incremental artifact cache. *)
