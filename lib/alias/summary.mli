(** Caller-visible write effects of defined functions.

    The paper converts each call site into pseudo-stores: none for
    functions proven to modify no non-local memory, one per dereferenced
    pointer argument when writes go only through parameters, and a
    wildcard store otherwise.  [compute] derives those summaries for MIR
    functions by a fixpoint over the call graph.

    In [`Faithful] mode a function that writes globals (or through
    non-parameter pointers) degrades to "writes anything", exactly as the
    paper prescribes to avoid full interprocedural analysis.  The
    [`Precise_globals] mode keeps the written-set explicit and is used by
    the ablation experiments. *)

module Int_set = Pt_set.Int_set

type t = {
  args : Int_set.t;  (** writes through these parameter positions *)
  globals : Ipds_mir.Var.Set.t;  (** direct or indirect global writes *)
  foreign_vars : Ipds_mir.Var.Set.t;
      (** non-global variables possibly written through pointers (their
          frames are unknown; callers intersect with their own scope) *)
  any : bool;  (** may write any address-taken or global memory *)
}

val writes_nothing : t
val is_pure : t -> bool
val pp : Format.formatter -> t -> unit

val fingerprint : t -> string
(** Canonical digest-stable rendering (variable ids, sorted) — part of
    the per-function content digest keying the incremental cache. *)

type mode =
  [ `Faithful
  | `Precise_globals
  ]

val of_extern : Ipds_mir.Extern.summary -> t

val compute : Ipds_mir.Program.t -> Points_to.t -> mode:mode -> string -> t
(** [compute p pt ~mode] returns a total summary lookup for every callee
    name (defined, declared extern, or unknown). *)
