module Mir = Ipds_mir
module Int_set = Pt_set.Int_set

type t = {
  args : Int_set.t;
  globals : Mir.Var.Set.t;
  foreign_vars : Mir.Var.Set.t;
  any : bool;
}

let writes_nothing =
  {
    args = Int_set.empty;
    globals = Mir.Var.Set.empty;
    foreign_vars = Mir.Var.Set.empty;
    any = false;
  }

let is_pure t =
  (not t.any) && Int_set.is_empty t.args
  && Mir.Var.Set.is_empty t.globals
  && Mir.Var.Set.is_empty t.foreign_vars

let union a b =
  {
    args = Int_set.union a.args b.args;
    globals = Mir.Var.Set.union a.globals b.globals;
    foreign_vars = Mir.Var.Set.union a.foreign_vars b.foreign_vars;
    any = a.any || b.any;
  }

let equal a b =
  Int_set.equal a.args b.args
  && Mir.Var.Set.equal a.globals b.globals
  && Mir.Var.Set.equal a.foreign_vars b.foreign_vars
  && Bool.equal a.any b.any

let pp ppf t =
  if t.any then Format.pp_print_string ppf "writes_all"
  else if is_pure t then Format.pp_print_string ppf "pure"
  else begin
    let args = List.map (Printf.sprintf "arg%d") (Int_set.elements t.args) in
    let globals =
      List.map (fun v -> v.Mir.Var.name) (Mir.Var.Set.elements t.globals)
    in
    let foreign =
      List.map
        (fun v -> "foreign:" ^ v.Mir.Var.name)
        (Mir.Var.Set.elements t.foreign_vars)
    in
    Format.fprintf ppf "writes{%s}" (String.concat ", " (args @ globals @ foreign))
  end

let fingerprint t =
  Printf.sprintf "a[%s]g[%s]f[%s]%c"
    (String.concat "," (List.map string_of_int (Int_set.elements t.args)))
    (String.concat ","
       (List.map (fun v -> string_of_int v.Mir.Var.id)
          (Mir.Var.Set.elements t.globals)))
    (String.concat ","
       (List.map (fun v -> string_of_int v.Mir.Var.id)
          (Mir.Var.Set.elements t.foreign_vars)))
    (if t.any then '*' else '.')

type mode =
  [ `Faithful
  | `Precise_globals
  ]

let of_extern = function
  | Mir.Extern.Pure -> writes_nothing
  | Mir.Extern.Writes_args positions ->
      { writes_nothing with args = Int_set.of_list positions }
  | Mir.Extern.Writes_anything -> { writes_nothing with any = true }

(* Effect of writing through the pointers an operand may carry, seen from
   the function containing the write.  Parameter pointees cannot alias the
   current frame (they predate it), so they contribute argument effects
   only; [unknown] pointees may alias anything address-taken. *)
let deref_effect (pts : Pt_set.t) ~globals_of =
  let globals, locals = Mir.Var.Set.partition globals_of pts.vars in
  {
    args = pts.params;
    globals;
    foreign_vars = locals;
    any = pts.unknown;
  }

let compute (p : Mir.Program.t) (pt : Points_to.t) ~mode =
  let globals_set =
    List.fold_left (fun acc v -> Mir.Var.Set.add v acc) Mir.Var.Set.empty p.globals
  in
  let globals_of v = Mir.Var.Set.mem v globals_set in
  let table : (string, t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Mir.Func.t) -> Hashtbl.replace table f.name writes_nothing)
    p.funcs;
  let current name =
    match Hashtbl.find_opt table name with
    | Some s -> s
    | None -> of_extern (Mir.Program.extern_summary p name)
  in
  let operand_pts fname (o : Mir.Operand.t) =
    match o with
    | Mir.Operand.Reg r -> Points_to.reg pt ~fname r
    | Mir.Operand.Imm _ -> Pt_set.empty
  in
  (* Effect contributed at a call site: instantiate the callee's argument
     effects with the actual arguments' pointees. *)
  let call_effect fname callee args =
    let callee_sum = current callee in
    let arg_effects =
      Int_set.fold
        (fun pos acc ->
          match List.nth_opt args pos with
          | Some o -> union acc (deref_effect (operand_pts fname o) ~globals_of)
          | None -> { acc with any = true })
        callee_sum.args writes_nothing
    in
    union arg_effects
      { callee_sum with args = Int_set.empty (* instantiated above *) }
  in
  let func_effect (f : Mir.Func.t) =
    let acc = ref writes_nothing in
    Mir.Func.iter_instrs f (fun _iid op ->
        match op with
        | Mir.Op.Store (a, _) -> (
            match a with
            | Mir.Addr.Direct v | Mir.Addr.Index (v, _) ->
                if globals_of v then
                  acc := union !acc { writes_nothing with globals = Mir.Var.Set.singleton v }
                (* direct stores to own locals are invisible to callers *)
            | Mir.Addr.Indirect r ->
                acc :=
                  union !acc (deref_effect (Points_to.reg pt ~fname:f.name r) ~globals_of))
        | Mir.Op.Call { callee; args; _ } ->
            acc := union !acc (call_effect f.name callee args)
        | Mir.Op.Const _ | Mir.Op.Move _ | Mir.Op.Binop _ | Mir.Op.Load _
        | Mir.Op.Addr_of _ | Mir.Op.Input _ | Mir.Op.Output _ | Mir.Op.Nop ->
            ())
    ;
    !acc
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Mir.Func.t) ->
        let updated = union (Hashtbl.find table f.name) (func_effect f) in
        if not (equal updated (Hashtbl.find table f.name)) then begin
          Hashtbl.replace table f.name updated;
          changed := true
        end)
      p.funcs
  done;
  let faithful s =
    if
      s.any
      || not (Mir.Var.Set.is_empty s.globals)
      || not (Mir.Var.Set.is_empty s.foreign_vars)
    then { writes_nothing with args = s.args; any = true }
    else s
  in
  fun name ->
    let s = current name in
    match mode with
    | `Faithful -> if Mir.Program.is_defined p name then faithful s else s
    | `Precise_globals -> s
