module Mir = Ipds_mir

type t = {
  regs : (string, Pt_set.t array) Hashtbl.t;
  escaped : Pt_set.t;
  address_taken : Mir.Var.Set.t;
}

(* Pparam elements are context-dependent; once a pointer escapes into
   memory its original frame is unknowable, so escaping parameters widen
   to [unknown]. *)
let widen_params (s : Pt_set.t) =
  if Pt_set.Int_set.is_empty s.params then s
  else
    {
      s with
      params = Pt_set.Int_set.empty;
      unknown = true;
    }

let compute (p : Mir.Program.t) =
  let regs : (string, Pt_set.t array) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Mir.Func.t) ->
      let arr = Array.make (max 1 f.reg_count) Pt_set.empty in
      List.iteri (fun i r -> arr.(Mir.Reg.index r) <- Pt_set.of_param i) f.params;
      Hashtbl.replace regs f.name arr)
    p.funcs;
  let escaped = ref Pt_set.empty in
  let address_taken = ref Mir.Var.Set.empty in
  let changed = ref true in
  let update arr r s =
    let idx = Mir.Reg.index r in
    let joined = Pt_set.union arr.(idx) s in
    if not (Pt_set.equal joined arr.(idx)) then begin
      arr.(idx) <- joined;
      changed := true
    end
  in
  let escape s =
    let widened = widen_params s in
    let joined = Pt_set.union !escaped widened in
    if not (Pt_set.equal joined !escaped) then begin
      escaped := joined;
      changed := true
    end
  in
  let operand_pts arr (o : Mir.Operand.t) =
    match o with
    | Mir.Operand.Reg r -> arr.(Mir.Reg.index r)
    | Mir.Operand.Imm _ -> Pt_set.empty
  in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Mir.Func.t) ->
        let arr = Hashtbl.find regs f.name in
        Mir.Func.iter_instrs f (fun _iid op ->
            match op with
            | Mir.Op.Addr_of (r, v, _) ->
                if not (Mir.Var.Set.mem v !address_taken) then begin
                  address_taken := Mir.Var.Set.add v !address_taken;
                  changed := true
                end;
                update arr r (Pt_set.of_var v)
            | Mir.Op.Move (r, o) -> update arr r (operand_pts arr o)
            | Mir.Op.Binop (r, _, a, b) ->
                update arr r (Pt_set.union (operand_pts arr a) (operand_pts arr b))
            | Mir.Op.Load (r, _) -> update arr r !escaped
            | Mir.Op.Store (_, o) -> escape (operand_pts arr o)
            | Mir.Op.Call { dst; callee; args } ->
                (* Arguments may be retained by a defined callee and
                   stored; its own Store instructions account for that
                   through the callee's [Pparam] escape.  Extern callees
                   are defined not to retain pointers (their summaries
                   bound their writes), with the exception of
                   [Writes_anything] externs, which may do anything. *)
                (if not (Mir.Program.is_defined p callee) then
                   match Mir.Program.extern_summary p callee with
                   | Mir.Extern.Writes_anything ->
                       List.iter (fun a -> escape (operand_pts arr a)) args
                   | Mir.Extern.Pure | Mir.Extern.Writes_args _ -> ());
                (match dst with
                | Some r ->
                    if Mir.Program.is_defined p callee then
                      update arr r Pt_set.unknown
                | None -> ())
            | Mir.Op.Const _ | Mir.Op.Input _ | Mir.Op.Output _ | Mir.Op.Nop -> ()))
      p.funcs
  done;
  { regs; escaped = !escaped; address_taken = !address_taken }

let reg t ~fname r =
  match Hashtbl.find_opt t.regs fname with
  | Some arr -> arr.(Mir.Reg.index r)
  | None -> invalid_arg (Printf.sprintf "Points_to.reg: unknown function %s" fname)

let escaped t = t.escaped
let address_taken t = t.address_taken

(* The slice of the whole-program solution that one function's analysis
   can observe: its own register points-to sets plus the program-wide
   escape set and address-taken set.  Digested for content-addressed
   per-function caching — two programs whose slices agree give the
   function identical alias answers. *)
let func_fingerprint t ~fname =
  let buf = Buffer.create 256 in
  (match Hashtbl.find_opt t.regs fname with
  | None -> Buffer.add_string buf "no-regs"
  | Some arr ->
      Array.iter
        (fun s ->
          Buffer.add_string buf (Pt_set.render s);
          Buffer.add_char buf ';')
        arr);
  Buffer.add_string buf "|escaped:";
  Buffer.add_string buf (Pt_set.render t.escaped);
  Buffer.add_string buf "|taken:";
  Mir.Var.Set.iter
    (fun v ->
      Buffer.add_string buf (string_of_int v.Mir.Var.id);
      Buffer.add_char buf ',')
    t.address_taken;
  Digest.to_hex (Digest.string (Buffer.contents buf))
