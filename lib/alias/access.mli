(** Classification of the memory a load, store or call may touch. *)

type target =
  | No_target
      (** dereference of a provably non-pointer value: the machine faults,
          nothing is read or written *)
  | Exact of Cell.t  (** exactly this cell *)
  | Within of Ipds_mir.Var.Set.t  (** some cell of one of these variables *)

val pp_target : Format.formatter -> target -> unit

type t
(** Per-function access oracle. *)

val make :
  Ipds_mir.Program.t ->
  Points_to.t ->
  summaries:(string -> Summary.t) ->
  Ipds_mir.Func.t ->
  t

val addr_target : t -> Ipds_mir.Addr.t -> target
(** The cells an addressing mode may resolve to.  Constant array indices
    are wrapped into bounds with the same modulo rule the machine applies,
    so [Exact] answers agree with execution. *)

val may_defs : t -> Ipds_mir.Op.t -> target
(** The cells an instruction may write: stores via {!addr_target}, calls
    via callee summaries instantiated at this site, everything else
    [No_target]. *)

val may_touch : target -> Cell.t -> bool
(** Could the target include the given cell? *)

val wrap_index : Ipds_mir.Var.t -> int -> int
(** The in-bounds cell index an arbitrary integer index resolves to
    (Euclidean modulo of the variable size); shared with the machine. *)
