module Ast = Ipds_minic.Ast

let binop_token : Ast.binop -> string = function
  | Ast.Arith Ipds_mir.Binop.Add -> "+"
  | Ast.Arith Ipds_mir.Binop.Sub -> "-"
  | Ast.Arith Ipds_mir.Binop.Mul -> "*"
  | Ast.Arith Ipds_mir.Binop.Div -> "/"
  | Ast.Arith Ipds_mir.Binop.Rem -> "%"
  | Ast.Arith Ipds_mir.Binop.And -> "&"
  | Ast.Arith Ipds_mir.Binop.Or -> "|"
  | Ast.Arith Ipds_mir.Binop.Xor -> "^"
  | Ast.Arith Ipds_mir.Binop.Shl -> "<<"
  | Ast.Arith Ipds_mir.Binop.Shr -> ">>"
  | Ast.Cmp Ipds_mir.Cmp.Lt -> "<"
  | Ast.Cmp Ipds_mir.Cmp.Le -> "<="
  | Ast.Cmp Ipds_mir.Cmp.Gt -> ">"
  | Ast.Cmp Ipds_mir.Cmp.Ge -> ">="
  | Ast.Cmp Ipds_mir.Cmp.Eq -> "=="
  | Ast.Cmp Ipds_mir.Cmp.Ne -> "!="
  | Ast.And -> "&&"
  | Ast.Or -> "||"

(* Fully parenthesized: precedence never matters, and the parser's
   [primary] rule accepts every parenthesized form. *)
let rec expr buf (e : Ast.expr) =
  match e with
  | Ast.Int_lit n ->
      if n < 0 then Buffer.add_string buf (Printf.sprintf "(0 - %d)" (-n))
      else Buffer.add_string buf (string_of_int n)
  | Ast.Var name -> Buffer.add_string buf name
  | Ast.Index (name, e) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '[';
      expr buf e;
      Buffer.add_char buf ']'
  | Ast.Addr_of (name, None) ->
      Buffer.add_char buf '&';
      Buffer.add_string buf name
  | Ast.Addr_of (name, Some e) ->
      Buffer.add_char buf '&';
      Buffer.add_string buf name;
      Buffer.add_char buf '[';
      expr buf e;
      Buffer.add_char buf ']'
  | Ast.Unary (op, e) ->
      Buffer.add_char buf '(';
      Buffer.add_string buf
        (match op with Ast.Neg -> "-" | Ast.Not -> "!" | Ast.Deref -> "*");
      expr buf e;
      Buffer.add_char buf ')'
  | Ast.Binary (op, a, b) ->
      Buffer.add_char buf '(';
      expr buf a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_token op);
      Buffer.add_char buf ' ';
      expr buf b;
      Buffer.add_char buf ')'
  | Ast.Call (name, args) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '(';
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string buf ", ";
          expr buf a)
        args;
      Buffer.add_char buf ')'
  | Ast.Input ch -> Buffer.add_string buf (Printf.sprintf "input(%d)" ch)

let lvalue buf (lv : Ast.lvalue) =
  match lv with
  | Ast.Lvar name -> Buffer.add_string buf name
  | Ast.Lindex (name, e) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '[';
      expr buf e;
      Buffer.add_char buf ']'
  | Ast.Lderef e ->
      Buffer.add_char buf '*';
      expr buf e

let pad buf indent = Buffer.add_string buf (String.make (2 * indent) ' ')

(* A [simple_stmt] — assignment or expression — without indent or ';',
   for use in [for] headers. *)
let simple buf (st : Ast.stmt) =
  match st with
  | Ast.Assign (lv, e) ->
      lvalue buf lv;
      Buffer.add_string buf " = ";
      expr buf e
  | Ast.Expr e -> expr buf e
  | _ -> invalid_arg "Printer.simple: not a simple statement"

let rec stmt buf ~indent (st : Ast.stmt) =
  match st with
  | Ast.Assign _ | Ast.Expr _ ->
      pad buf indent;
      simple buf st;
      Buffer.add_string buf ";\n"
  | Ast.If (c, then_b, else_b) ->
      pad buf indent;
      Buffer.add_string buf "if (";
      expr buf c;
      Buffer.add_string buf ") {\n";
      List.iter (stmt buf ~indent:(indent + 1)) then_b;
      pad buf indent;
      Buffer.add_string buf "}";
      (match else_b with
      | [] -> ()
      | _ ->
          (* [else { if ... }] parses back to the same single-statement
             else branch as an [else if] chain would *)
          Buffer.add_string buf " else {\n";
          List.iter (stmt buf ~indent:(indent + 1)) else_b;
          pad buf indent;
          Buffer.add_string buf "}");
      Buffer.add_char buf '\n'
  | Ast.While (c, body) ->
      pad buf indent;
      Buffer.add_string buf "while (";
      expr buf c;
      Buffer.add_string buf ") {\n";
      List.iter (stmt buf ~indent:(indent + 1)) body;
      pad buf indent;
      Buffer.add_string buf "}\n"
  | Ast.For (init, cond, step, body) ->
      pad buf indent;
      Buffer.add_string buf "for (";
      (match init with None -> () | Some s -> simple buf s);
      Buffer.add_string buf "; ";
      (match cond with None -> () | Some c -> expr buf c);
      Buffer.add_string buf "; ";
      (match step with None -> () | Some s -> simple buf s);
      Buffer.add_string buf ") {\n";
      List.iter (stmt buf ~indent:(indent + 1)) body;
      pad buf indent;
      Buffer.add_string buf "}\n"
  | Ast.Return None ->
      pad buf indent;
      Buffer.add_string buf "return;\n"
  | Ast.Return (Some e) ->
      pad buf indent;
      Buffer.add_string buf "return ";
      expr buf e;
      Buffer.add_string buf ";\n"
  | Ast.Output e ->
      pad buf indent;
      Buffer.add_string buf "output(";
      expr buf e;
      Buffer.add_string buf ");\n"
  | Ast.Break ->
      pad buf indent;
      Buffer.add_string buf "break;\n"
  | Ast.Continue ->
      pad buf indent;
      Buffer.add_string buf "continue;\n"

let decl buf ~indent (d : Ast.decl) =
  pad buf indent;
  (match d.Ast.d_size with
  | None -> Buffer.add_string buf (Printf.sprintf "int %s;\n" d.Ast.d_name)
  | Some n -> Buffer.add_string buf (Printf.sprintf "int %s[%d];\n" d.Ast.d_name n))

let func buf (f : Ast.func) =
  Buffer.add_string buf (Printf.sprintf "int %s(" f.Ast.f_name);
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf ("int " ^ p))
    f.Ast.f_params;
  Buffer.add_string buf ") {\n";
  List.iter (decl buf ~indent:1) f.Ast.f_locals;
  List.iter (stmt buf ~indent:1) f.Ast.f_body;
  Buffer.add_string buf "}\n"

let program (p : Ast.program) =
  let buf = Buffer.create 4096 in
  List.iter (decl buf ~indent:0) p.Ast.p_globals;
  if p.Ast.p_globals <> [] then Buffer.add_char buf '\n';
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf '\n';
      func buf f)
    p.Ast.p_funcs;
  Buffer.contents buf
