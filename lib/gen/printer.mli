(** MiniC abstract syntax back to concrete syntax.

    The output is deliberately conservative — every compound expression
    is parenthesized — so the result of [program] always re-parses with
    {!Ipds_minic.Minic.parse} to the same tree modulo redundant
    grouping.  The generator ({!Gen}) goes through this printer rather
    than handing an AST straight to the lowering passes: each generated
    program then exercises the whole front end (lexer, parser, scope
    checks) exactly like the hand-written workload sources do. *)

val expr : Buffer.t -> Ipds_minic.Ast.expr -> unit
val stmt : Buffer.t -> indent:int -> Ipds_minic.Ast.stmt -> unit

val program : Ipds_minic.Ast.program -> string
(** Render a full translation unit (globals, then functions). *)
