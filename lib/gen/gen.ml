module Ast = Ipds_minic.Ast
module B = Ipds_mir.Binop
module C = Ipds_mir.Cmp
module Pool = Ipds_parallel.Pool

type spec = {
  helpers : int;
  dispatch : int;
  max_depth : int;
}

let default_spec = { helpers = 3; dispatch = 5; max_depth = 3 }

let m_programs = Ipds_obs.Registry.counter "gen.programs"

(* All generation state for one program.  [scalars] are readable,
   [targets] assignable — loop counters and [main]'s bookkeeping
   variables appear only in the former, which is what makes every
   generated loop provably bounded. *)
type ctx = {
  rng : Random.State.t;
  spec : spec;
  scalars : string list;
  targets : string list;
  arrays : (string * int) list;  (* name, power-of-two size *)
  callees : (string * int) list;  (* helper name, arity *)
  budget : int ref;
  nesting : int;  (* enclosing loop depth at the generation point *)
  call_quota : int ref;  (* helper-call sites left for this function *)
  call_nesting_max : int;  (* deepest loop nesting allowed to call helpers *)
}

let pick rng l = List.nth l (Random.State.int rng (List.length l))
let range rng lo hi = lo + Random.State.int rng (hi - lo + 1)

let lit rng =
  Ast.Int_lit
    (match Random.State.int rng 3 with
    | 0 -> Random.State.int rng 8
    | 1 -> Random.State.int rng 256
    | _ -> Random.State.int rng 65536)

let arith = [ B.Add; B.Sub; B.Mul; B.Div; B.Rem; B.And; B.Or; B.Xor; B.Shl; B.Shr ]
let cmps = [ C.Lt; C.Le; C.Gt; C.Ge; C.Eq; C.Ne ]

(* Expressions are unconstrained except for memory: the machine's
   arithmetic is total (division by zero yields 0, shifts clamp), so
   only array subscripts need care — they are always masked to the
   power-of-two size. *)
let rec expr ctx depth =
  let rng = ctx.rng in
  if depth <= 0 then leaf ctx
  else
    match Random.State.int rng 8 with
    | 0 | 1 -> leaf ctx
    | 2 | 3 | 4 ->
        Ast.Binary (Ast.Arith (pick rng arith), expr ctx (depth - 1), expr ctx (depth - 1))
    | 5 when ctx.arrays <> [] -> array_read ctx
    | 6 -> call_value ctx (depth - 1)
    | _ -> Ast.Binary (Ast.Arith B.Add, leaf ctx, leaf ctx)

and leaf ctx =
  match Random.State.int ctx.rng 5 with
  | 0 | 1 -> lit ctx.rng
  | 2 -> Ast.Var (pick ctx.rng ctx.scalars)
  | 3 -> Ast.Input 0
  | _ -> if ctx.arrays = [] then lit ctx.rng else array_read ctx

and array_read ctx =
  let name, size = pick ctx.rng ctx.arrays in
  Ast.Index (name, masked_index ctx size)

and masked_index ctx size =
  Ast.Binary (Ast.Arith B.And, expr ctx 1, Ast.Int_lit (size - 1))

and call_value ctx depth =
  let rng = ctx.rng in
  let extern () =
    match ctx.arrays with
    | [] -> lit rng
    | arrays -> (
        let name, size = pick rng arrays in
        let base = Ast.Addr_of (name, Some (Ast.Int_lit 0)) in
        match Random.State.int rng 3 with
        | 0 -> Ast.Call ("checksum", [ base; Ast.Int_lit (range rng 1 size) ])
        | 1 -> Ast.Call ("hash_pw", [ base; Ast.Int_lit (range rng 1 size) ])
        | _ -> Ast.Call ("strlen", [ base ]))
  in
  (* Helper calls are what make worst-case cost multiplicative (loops
     around calls around loops...), so they are rationed: a few call
     sites per function, and never under deep loop nesting. *)
  let helpers_ok =
    ctx.callees <> [] && !(ctx.call_quota) > 0
    && ctx.nesting <= ctx.call_nesting_max
  in
  if (not helpers_ok) || Random.State.bool rng then extern ()
  else begin
    decr ctx.call_quota;
    let name, arity = pick rng ctx.callees in
    Ast.Call (name, List.init arity (fun _ -> expr ctx depth))
  end

let cond ctx depth =
  let cmp () =
    Ast.Binary (Ast.Cmp (pick ctx.rng cmps), expr ctx depth, expr ctx depth)
  in
  match Random.State.int ctx.rng 6 with
  | 0 -> Ast.Binary (Ast.And, cmp (), cmp ())
  | 1 -> Ast.Binary (Ast.Or, cmp (), cmp ())
  | 2 -> Ast.Unary (Ast.Not, cmp ())
  | _ -> cmp ()

(* [loop] is the innermost enclosing loop construct.  [continue] is
   only ever emitted under a [`For] — in a count-down [while] it would
   skip the decrement and spin forever. *)
type loop = No_loop | In_for | In_while

let effect_call ctx =
  let rng = ctx.rng in
  match ctx.arrays with
  | arrays when arrays <> [] && Random.State.int rng 3 = 0 -> (
      let name, size = pick rng arrays in
      let base = Ast.Addr_of (name, Some (Ast.Int_lit 0)) in
      match Random.State.int rng 3 with
      | 0 -> Ast.Expr (Ast.Call ("memset", [ base; expr ctx 1; Ast.Int_lit (range rng 1 size) ]))
      | 1 -> Ast.Expr (Ast.Call ("read_line", [ base; Ast.Int_lit (range rng 1 size) ]))
      | _ -> Ast.Expr (Ast.Call ("send", [ Ast.Int_lit 0; expr ctx 1 ]))
    )
  | _ ->
      if Random.State.bool rng then
        Ast.Expr (Ast.Call ("log_msg", [ expr ctx 1; expr ctx 1 ]))
      else Ast.Expr (Ast.Call ("send", [ Ast.Int_lit 0; expr ctx 1 ]))

let rec stmts ctx ~depth ~loop n_hint =
  let n = max 1 (min n_hint (max 1 !(ctx.budget))) in
  List.concat (List.init n (fun _ -> stmt_one ctx ~depth ~loop))

(* Returns a list because the count-down while needs its counter
   initialization alongside the loop itself. *)
and stmt_one ctx ~depth ~loop =
  let rng = ctx.rng in
  decr ctx.budget;
  let simple () =
    match Random.State.int rng 6 with
    | 0 | 1 -> [ Ast.Assign (Ast.Lvar (pick rng ctx.targets), expr ctx 2) ]
    | 2 when ctx.arrays <> [] ->
        let name, size = pick rng ctx.arrays in
        [ Ast.Assign (Ast.Lindex (name, masked_index ctx size), expr ctx 2) ]
    | 3 -> [ Ast.Output (expr ctx 2) ]
    | 4 -> [ effect_call ctx ]
    | _ -> [ Ast.Assign (Ast.Lvar (pick rng ctx.targets), expr ctx 2) ]
  in
  if depth <= 0 || !(ctx.budget) <= 0 then simple ()
  else
    match Random.State.int rng 10 with
    | 0 | 1 ->
        let then_b = stmts ctx ~depth:(depth - 1) ~loop (range rng 1 3) in
        let else_b =
          if Random.State.bool rng then stmts ctx ~depth:(depth - 1) ~loop (range rng 1 2)
          else []
        in
        [ Ast.If (cond ctx 1, then_b, else_b) ]
    | 2 ->
        let k = Printf.sprintf "k%d" depth in
        let bound = range rng 2 6 in
        let body =
          stmts
            { ctx with nesting = ctx.nesting + 1 }
            ~depth:(depth - 1) ~loop:In_for (range rng 1 3)
        in
        [
          Ast.For
            ( Some (Ast.Assign (Ast.Lvar k, Ast.Int_lit 0)),
              Some (Ast.Binary (Ast.Cmp C.Lt, Ast.Var k, Ast.Int_lit bound)),
              Some
                (Ast.Assign
                   (Ast.Lvar k, Ast.Binary (Ast.Arith B.Add, Ast.Var k, Ast.Int_lit 1))),
              body );
        ]
    | 3 ->
        let w = Printf.sprintf "w%d" depth in
        let bound = range rng 2 4 in
        let body =
          stmts
            { ctx with nesting = ctx.nesting + 1 }
            ~depth:(depth - 1) ~loop:In_while (range rng 1 2)
        in
        [
          Ast.Assign (Ast.Lvar w, Ast.Int_lit bound);
          Ast.While
            ( Ast.Binary (Ast.Cmp C.Gt, Ast.Var w, Ast.Int_lit 0),
              body
              @ [
                  Ast.Assign
                    (Ast.Lvar w, Ast.Binary (Ast.Arith B.Sub, Ast.Var w, Ast.Int_lit 1));
                ] );
        ]
    | 4 when loop <> No_loop ->
        [ Ast.If (cond ctx 1, [ Ast.Break ], []) ]
    | 5 when loop = In_for ->
        [ Ast.If (cond ctx 1, [ Ast.Continue ], []) ]
    | _ -> simple ()

(* Loop counters for every depth a function body can nest to, plus the
   function's scratch accumulator.  They are declared in every
   function and excluded from assignment targets. *)
let counter_locals max_depth =
  List.concat
    (List.init max_depth (fun i ->
         [
           { Ast.d_name = Printf.sprintf "k%d" (i + 1); d_size = None };
           { Ast.d_name = Printf.sprintf "w%d" (i + 1); d_size = None };
         ]))

(* Helper bodies get a single loop level and may call earlier helpers
   only outside their loops (and at most twice): with [for] bounds <= 6
   and [while] bounds <= 4, cost(svc_i) <= ~400 + 2*cost(svc_{i-1})
   interpreter steps, so a chain of three helpers stays under ~3k. *)
let helper_func spec rng ~globals ~arrays ~callees idx =
  let name = Printf.sprintf "svc%d" idx in
  let arity = range rng 1 2 in
  let params = List.init arity (Printf.sprintf "p%d") in
  let depth = 1 in
  let ctx =
    {
      rng;
      spec;
      scalars = params @ ("t" :: globals);
      targets = "t" :: globals;
      arrays;
      callees;
      budget = ref (range rng 4 9);
      nesting = 0;
      call_quota = ref 2;
      call_nesting_max = 0;
    }
  in
  let body = stmts ctx ~depth ~loop:No_loop (range rng 2 4) in
  let f =
    {
      Ast.f_name = name;
      f_params = params;
      f_locals = { Ast.d_name = "t"; d_size = None } :: counter_locals depth;
      f_body = (Ast.Assign (Ast.Lvar "t", Ast.Int_lit 0) :: body)
               @ [ Ast.Return (Some (expr ctx 2)) ];
    }
  in
  (f, (name, arity))

(* [main]'s dispatch arms live inside the session [for] (nesting 1):
   helper calls are allowed there but not in deeper loops, so one
   request costs at most a few helper chains (~3k steps each) plus the
   arm's own bounded loops — with <= 12 requests per session the whole
   run stays around 1e5 steps, well inside the interpreter's default
   500k budget. *)
let main_func spec rng ~index ~globals ~arrays ~callees =
  let depth = spec.max_depth in
  let ctx =
    {
      rng;
      spec;
      scalars = "acc" :: "r" :: "c" :: "nreq" :: globals;
      targets = "acc" :: globals;
      arrays;
      callees;
      budget = ref (range rng 14 26);
      nesting = 1;
      call_quota = ref 3;
      call_nesting_max = 1;
    }
  in
  (* array init: tab[i] = (i * c) & 255 over the whole array *)
  let init_loops =
    List.map
      (fun (name, size) ->
        let mult = range rng 1 31 in
        Ast.For
          ( Some (Ast.Assign (Ast.Lvar "k1", Ast.Int_lit 0)),
            Some (Ast.Binary (Ast.Cmp C.Lt, Ast.Var "k1", Ast.Int_lit size)),
            Some
              (Ast.Assign
                 (Ast.Lvar "k1", Ast.Binary (Ast.Arith B.Add, Ast.Var "k1", Ast.Int_lit 1))),
            [
              Ast.Assign
                ( Ast.Lindex (name, Ast.Var "k1"),
                  Ast.Binary
                    ( Ast.Arith B.And,
                      Ast.Binary (Ast.Arith B.Mul, Ast.Var "k1", Ast.Int_lit mult),
                      Ast.Int_lit 255 ) );
            ] ))
      arrays
  in
  (* session loop: a bounded number of requests, dispatched on c *)
  let nmod = range rng 4 8 and nbase = range rng 2 4 in
  let narms = range rng 2 (max 2 spec.dispatch) in
  let arms =
    List.init narms (fun _ ->
        let body = stmts ctx ~depth:(depth - 1) ~loop:In_for (range rng 1 3) in
        if Random.State.int rng 2 = 0 && callees <> [] then
          let name, arity = pick rng callees in
          Ast.Assign
            ( Ast.Lvar "acc",
              Ast.Binary
                ( Ast.Arith B.Add,
                  Ast.Var "acc",
                  Ast.Call (name, List.init arity (fun _ -> expr ctx 1)) ) )
          :: body
        else body)
  in
  let rec chain i = function
    | [] -> []
    | [ last ] -> last
    | arm :: rest ->
        [
          Ast.If
            ( Ast.Binary (Ast.Cmp C.Eq, Ast.Var "c", Ast.Int_lit i),
              arm,
              chain (i + 1) rest );
        ]
  in
  let session =
    Ast.For
      ( Some (Ast.Assign (Ast.Lvar "r", Ast.Int_lit 0)),
        Some (Ast.Binary (Ast.Cmp C.Lt, Ast.Var "r", Ast.Var "nreq")),
        Some (Ast.Assign (Ast.Lvar "r", Ast.Binary (Ast.Arith B.Add, Ast.Var "r", Ast.Int_lit 1))),
        Ast.Assign
          (Ast.Lvar "c", Ast.Binary (Ast.Arith B.Rem, Ast.Input 0, Ast.Int_lit narms))
        :: chain 0 arms )
  in
  {
    Ast.f_name = "main";
    f_params = [];
    f_locals =
      [
        { Ast.d_name = "acc"; d_size = None };
        { Ast.d_name = "r"; d_size = None };
        { Ast.d_name = "c"; d_size = None };
        { Ast.d_name = "nreq"; d_size = None };
      ]
      @ counter_locals depth;
    f_body =
      (* version banner: stamps the population index into the program,
         so members are pairwise distinct by construction *)
      Ast.Output (Ast.Int_lit (1000 + index))
      :: init_loops
      @ [
          Ast.Assign (Ast.Lvar "acc", Ast.Int_lit 0);
          Ast.Assign
            ( Ast.Lvar "nreq",
              Ast.Binary
                ( Ast.Arith B.Add,
                  Ast.Binary (Ast.Arith B.Rem, Ast.Input 0, Ast.Int_lit nmod),
                  Ast.Int_lit nbase ) );
          session;
          Ast.Output (Ast.Var "acc");
          Ast.Return (Some (Ast.Int_lit 0));
        ];
  }

let ast ?(spec = default_spec) ~seed ~index () =
  let rng = Random.State.make [| seed; index; 0x51f15eed |] in
  let nglobals = range rng 2 4 in
  let globals = List.init nglobals (Printf.sprintf "g%d") in
  let narrays = range rng 1 2 in
  let arrays =
    List.init narrays (fun i ->
        (Printf.sprintf "tab%d" i, pick rng [ 4; 8; 16 ]))
  in
  let nhelpers = range rng 1 (max 1 spec.helpers) in
  let funcs, callees =
    List.fold_left
      (fun (funcs, callees) i ->
        let f, callee = helper_func spec rng ~globals ~arrays ~callees i in
        (f :: funcs, callee :: callees))
      ([], []) (List.init nhelpers Fun.id)
  in
  let main = main_func spec rng ~index ~globals ~arrays ~callees in
  Ipds_obs.Registry.incr m_programs;
  {
    Ast.p_globals =
      List.map (fun g -> { Ast.d_name = g; d_size = None }) globals
      @ List.map (fun (a, size) -> { Ast.d_name = a; d_size = Some size }) arrays;
    p_funcs = List.rev funcs @ [ main ];
  }

let source ?spec ~seed ~index () = Printer.program (ast ?spec ~seed ~index ())
let compile ?spec ~seed ~index () = Ipds_minic.Minic.compile (source ?spec ~seed ~index ())

let population ?spec ?jobs ?pool ~seed ~count () =
  let chunk = 32 in
  let nchunks = (count + chunk - 1) / chunk in
  Pool.with_opt ?jobs ?pool (fun pool ->
      Pool.map' pool
        (fun ci ->
          List.init
            (min chunk (count - (ci * chunk)))
            (fun j -> source ?spec ~seed ~index:((ci * chunk) + j) ()))
        (List.init nchunks Fun.id))
  |> List.concat
