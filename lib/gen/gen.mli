(** Seeded, structurally random MiniC server generator.

    Every generated program is a population member shaped like the
    hand-written workloads: globals holding server state, a couple of
    helper routines, and a [main] that reads a bounded request count
    from the input script and dispatches each request through an
    if-chain.  Programs are {b benign by construction}:

    - every loop is bounded — counted [for] loops with literal bounds
      (or a bound derived from [input() % k + c]) and count-down
      [while] loops whose counter is never touched by the body, with
      [continue] restricted to [for] bodies;
    - array subscripts are always masked to the (power-of-two) array
      size, and pointer arguments to the extern runtime point at
      element 0 with clamped lengths, so no run can fault;
    - helper calls go strictly down the helper index, so there is no
      recursion.

    Together with the machine's total arithmetic ([x / 0 = 0]) this
    means each program terminates well inside the interpreter's step
    budget and, being deterministic given the input script, produces
    zero IPDS alarms on benign runs.

    {b Determinism.}  A program is a pure function of [(spec, seed,
    index)]: generation draws from
    [Random.State.make [| seed; index; salt |]], never from shared
    state, so populations are reproducible and {!population}'s pool
    fan-out is bit-identical for any job count. *)

type spec = {
  helpers : int;  (** helper-function count upper bound (>= 1) *)
  dispatch : int;  (** dispatch-arm count upper bound (>= 2) *)
  max_depth : int;  (** statement nesting bound in generated bodies *)
}

val default_spec : spec

val ast : ?spec:spec -> seed:int -> index:int -> unit -> Ipds_minic.Ast.program
(** The program as syntax.  [index] is stamped into the server's
    version banner, so distinct indices always yield distinct
    programs. *)

val source : ?spec:spec -> seed:int -> index:int -> unit -> string
(** [ast] rendered through {!Printer.program} — the canonical form fed
    to {!Ipds_minic.Minic.compile} so generated members exercise the
    full front end. *)

val compile : ?spec:spec -> seed:int -> index:int -> unit -> Ipds_mir.Program.t
(** [Minic.compile (source ...)]. *)

val population :
  ?spec:spec ->
  ?jobs:int ->
  ?pool:Ipds_parallel.Pool.t ->
  seed:int ->
  count:int ->
  unit ->
  string list
(** Sources for indices [0 .. count-1], generated in fixed-size chunks
    over the pool and reassembled in index order — the result is
    byte-identical for any [jobs] value (including [~jobs:1]). *)
