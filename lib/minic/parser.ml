module L = Lexer

exception Error of string

type stream = {
  toks : (L.token * int) array;
  mutable pos : int;
}

let peek s = fst s.toks.(s.pos)
let peek2 s = if s.pos + 1 < Array.length s.toks then fst s.toks.(s.pos + 1) else L.EOF
let line s = snd s.toks.(s.pos)

let fail s fmt =
  Printf.ksprintf (fun m -> raise (Error (Printf.sprintf "line %d: %s" (line s) m))) fmt

let next s =
  let t = peek s in
  if t <> L.EOF then s.pos <- s.pos + 1;
  t

let expect s t =
  let got = next s in
  if got <> t then fail s "expected %s, got %s" (L.describe t) (L.describe got)

let ident s =
  match next s with
  | L.IDENT name -> name
  | t -> fail s "expected identifier, got %s" (L.describe t)

(* ---------- expressions ---------- *)

let rec primary s =
  match next s with
  | L.INT n -> Ast.Int_lit n
  | L.MINUS -> Ast.Unary (Ast.Neg, primary s)
  | L.BANG -> Ast.Unary (Ast.Not, primary s)
  | L.STAR -> Ast.Unary (Ast.Deref, primary s)
  | L.LPAREN ->
      let e = expr s in
      expect s L.RPAREN;
      e
  | L.KW_INPUT ->
      expect s L.LPAREN;
      let ch =
        match next s with
        | L.INT n -> n
        | t -> fail s "input channel must be a literal, got %s" (L.describe t)
      in
      expect s L.RPAREN;
      Ast.Input ch
  | L.AMP -> (
      let name = ident s in
      match peek s with
      | L.LBRACKET ->
          expect s L.LBRACKET;
          let e = expr s in
          expect s L.RBRACKET;
          Ast.Addr_of (name, Some e)
      | _ -> Ast.Addr_of (name, None))
  | L.IDENT name -> (
      match peek s with
      | L.LBRACKET ->
          expect s L.LBRACKET;
          let e = expr s in
          expect s L.RBRACKET;
          Ast.Index (name, e)
      | L.LPAREN ->
          expect s L.LPAREN;
          let args = ref [] in
          if peek s <> L.RPAREN then begin
            args := [ expr s ];
            while peek s = L.COMMA do
              expect s L.COMMA;
              args := expr s :: !args
            done
          end;
          expect s L.RPAREN;
          Ast.Call (name, List.rev !args)
      | _ -> Ast.Var name)
  | t -> fail s "expected expression, got %s" (L.describe t)

(* Precedence-climbing over binary operators. *)
and binary s min_prec =
  let prec = function
    | L.STAR | L.SLASH | L.PERCENT -> Some 10
    | L.PLUS | L.MINUS -> Some 9
    | L.SHL | L.SHR -> Some 8
    | L.LT | L.LE | L.GT | L.GE -> Some 7
    | L.EQ | L.NE -> Some 6
    | L.AMP -> Some 5
    | L.CARET -> Some 4
    | L.PIPE -> Some 3
    | L.ANDAND -> Some 2
    | L.OROR -> Some 1
    | _ -> None
  in
  let op_of = function
    | L.STAR -> Ast.Arith Ipds_mir.Binop.Mul
    | L.SLASH -> Ast.Arith Ipds_mir.Binop.Div
    | L.PERCENT -> Ast.Arith Ipds_mir.Binop.Rem
    | L.PLUS -> Ast.Arith Ipds_mir.Binop.Add
    | L.MINUS -> Ast.Arith Ipds_mir.Binop.Sub
    | L.SHL -> Ast.Arith Ipds_mir.Binop.Shl
    | L.SHR -> Ast.Arith Ipds_mir.Binop.Shr
    | L.AMP -> Ast.Arith Ipds_mir.Binop.And
    | L.CARET -> Ast.Arith Ipds_mir.Binop.Xor
    | L.PIPE -> Ast.Arith Ipds_mir.Binop.Or
    | L.LT -> Ast.Cmp Ipds_mir.Cmp.Lt
    | L.LE -> Ast.Cmp Ipds_mir.Cmp.Le
    | L.GT -> Ast.Cmp Ipds_mir.Cmp.Gt
    | L.GE -> Ast.Cmp Ipds_mir.Cmp.Ge
    | L.EQ -> Ast.Cmp Ipds_mir.Cmp.Eq
    | L.NE -> Ast.Cmp Ipds_mir.Cmp.Ne
    | L.ANDAND -> Ast.And
    | L.OROR -> Ast.Or
    | _ -> assert false
  in
  let lhs = ref (primary s) in
  let continue = ref true in
  while !continue do
    match prec (peek s) with
    | Some p when p >= min_prec ->
        let tok = next s in
        let rhs = binary s (p + 1) in
        lhs := Ast.Binary (op_of tok, !lhs, rhs)
    | Some _ | None -> continue := false
  done;
  !lhs

and expr s = binary s 1

(* ---------- statements ---------- *)

let lvalue_of_expr s = function
  | Ast.Var name -> Ast.Lvar name
  | Ast.Index (name, e) -> Ast.Lindex (name, e)
  | Ast.Unary (Ast.Deref, e) -> Ast.Lderef e
  | Ast.Int_lit _ | Ast.Addr_of _ | Ast.Unary _ | Ast.Binary _ | Ast.Call _
  | Ast.Input _ ->
      fail s "invalid assignment target"

let rec simple_stmt s =
  (* assignment or expression statement, without the trailing ';' *)
  let e = expr s in
  if peek s = L.ASSIGN then begin
    expect s L.ASSIGN;
    let rhs = expr s in
    Ast.Assign (lvalue_of_expr s e, rhs)
  end
  else Ast.Expr e

and stmt s =
  match peek s with
  | L.KW_IF ->
      expect s L.KW_IF;
      expect s L.LPAREN;
      let c = expr s in
      expect s L.RPAREN;
      let then_b = block s in
      let else_b =
        if peek s = L.KW_ELSE then begin
          expect s L.KW_ELSE;
          if peek s = L.KW_IF then [ stmt s ] else block s
        end
        else []
      in
      Ast.If (c, then_b, else_b)
  | L.KW_WHILE ->
      expect s L.KW_WHILE;
      expect s L.LPAREN;
      let c = expr s in
      expect s L.RPAREN;
      Ast.While (c, block s)
  | L.KW_FOR ->
      expect s L.KW_FOR;
      expect s L.LPAREN;
      let init = if peek s = L.SEMI then None else Some (simple_stmt s) in
      expect s L.SEMI;
      let cond = if peek s = L.SEMI then None else Some (expr s) in
      expect s L.SEMI;
      let step = if peek s = L.RPAREN then None else Some (simple_stmt s) in
      expect s L.RPAREN;
      Ast.For (init, cond, step, block s)
  | L.KW_RETURN ->
      expect s L.KW_RETURN;
      let e = if peek s = L.SEMI then None else Some (expr s) in
      expect s L.SEMI;
      Ast.Return e
  | L.KW_OUTPUT ->
      expect s L.KW_OUTPUT;
      expect s L.LPAREN;
      let e = expr s in
      expect s L.RPAREN;
      expect s L.SEMI;
      Ast.Output e
  | L.KW_BREAK ->
      expect s L.KW_BREAK;
      expect s L.SEMI;
      Ast.Break
  | L.KW_CONTINUE ->
      expect s L.KW_CONTINUE;
      expect s L.SEMI;
      Ast.Continue
  | _ ->
      let st = simple_stmt s in
      expect s L.SEMI;
      st

and block s =
  expect s L.LBRACE;
  let stmts = ref [] in
  while peek s <> L.RBRACE do
    stmts := stmt s :: !stmts
  done;
  expect s L.RBRACE;
  List.rev !stmts

(* ---------- declarations ---------- *)

let decl_after_int s =
  (* after "int", possibly "*", then name and optional size *)
  if peek s = L.STAR then ignore (next s);
  let name = ident s in
  let size =
    if peek s = L.LBRACKET then begin
      expect s L.LBRACKET;
      let n =
        match next s with
        | L.INT n when n >= 1 -> n
        | t -> fail s "array size must be a positive literal, got %s" (L.describe t)
      in
      expect s L.RBRACKET;
      Some n
    end
    else None
  in
  { Ast.d_name = name; d_size = size }

let parse src =
  let s =
    try { toks = L.tokens src; pos = 0 }
    with L.Error m -> raise (Error m)
  in
  let globals = ref [] in
  let funcs = ref [] in
  while peek s <> L.EOF do
    expect s L.KW_INT;
    if peek s = L.STAR || peek2 s <> L.LPAREN then begin
      (* global variable *)
      let d = decl_after_int s in
      expect s L.SEMI;
      globals := d :: !globals
    end
    else begin
      let f_name = ident s in
      expect s L.LPAREN;
      let params = ref [] in
      if peek s <> L.RPAREN then begin
        let param () =
          expect s L.KW_INT;
          if peek s = L.STAR then ignore (next s);
          ident s
        in
        params := [ param () ];
        while peek s = L.COMMA do
          expect s L.COMMA;
          params := param () :: !params
        done
      end;
      expect s L.RPAREN;
      expect s L.LBRACE;
      let locals = ref [] in
      while peek s = L.KW_INT do
        expect s L.KW_INT;
        let d = decl_after_int s in
        expect s L.SEMI;
        locals := d :: !locals
      done;
      let body = ref [] in
      while peek s <> L.RBRACE do
        body := stmt s :: !body
      done;
      expect s L.RBRACE;
      funcs :=
        {
          Ast.f_name;
          f_params = List.rev !params;
          f_locals = List.rev !locals;
          f_body = List.rev !body;
        }
        :: !funcs
    end
  done;
  { Ast.p_globals = List.rev !globals; p_funcs = List.rev !funcs }
