(** Facade: compile MiniC source text to a validated MIR program. *)

exception Error of string
(** Wraps lexer, parser and codegen failures with a description. *)

val compile : string -> Ipds_mir.Program.t
val parse : string -> Ast.program
