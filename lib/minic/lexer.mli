(** MiniC tokens and lexer. *)

type token =
  | IDENT of string
  | INT of int
  | KW_INT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_OUTPUT
  | KW_INPUT
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | ASSIGN  (** = *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | SHL
  | SHR
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | ANDAND
  | OROR
  | BANG
  | EOF

exception Error of string

val tokens : string -> (token * int) array
(** Token stream with line numbers.  Comments are [// …] and [/* … */]. *)

val describe : token -> string
