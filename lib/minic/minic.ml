exception Error of string

let parse src =
  try Parser.parse src with
  | Lexer.Error m | Parser.Error m -> raise (Error m)

let compile src =
  try Codegen.compile (parse src) with
  | Codegen.Error m -> raise (Error m)
