(** MiniC → MIR code generation.

    Compilation is deliberately -O0 shaped: every MiniC variable
    (parameters included) is a memory-resident MIR variable, read with a
    fresh load at each use and written with a store at each assignment.
    That makes the security-relevant branches of the workloads test
    freshly loaded memory values — the code shape the paper's SUIF-level
    analysis sees before register promotion.

    Runtime externals used by the source are declared automatically from
    {!Ipds_mir.Extern.default_table}. *)

exception Error of string

val compile : Ast.program -> Ipds_mir.Program.t
(** Raises {!Error} on scope/arity violations, [Invalid_argument] if the
    generated program fails validation (a codegen bug). *)
