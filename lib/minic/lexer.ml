type token =
  | IDENT of string
  | INT of int
  | KW_INT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_OUTPUT
  | KW_INPUT
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | SHL
  | SHR
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | ANDAND
  | OROR
  | BANG
  | EOF

exception Error of string

let keyword = function
  | "int" -> Some KW_INT
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "output" -> Some KW_OUTPUT
  | "input" -> Some KW_INPUT
  | _ -> None

let describe = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | KW_INT -> "int"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_OUTPUT -> "output"
  | KW_INPUT -> "input"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | SEMI -> ";"
  | COMMA -> ","
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | SHL -> "<<"
  | SHR -> ">>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "=="
  | NE -> "!="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | EOF -> "<eof>"

let tokens src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = out := (t, !line) :: !out in
  let is_digit c = c >= '0' && c <= '9' in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_'
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then raise (Error (Printf.sprintf "line %d: unclosed comment" !line))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      push (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      push (match keyword word with Some k -> k | None -> IDENT word)
    end
    else begin
      let two t =
        push t;
        i := !i + 2
      in
      let one t =
        push t;
        incr i
      in
      match c, peek 1 with
      | '=', Some '=' -> two EQ
      | '!', Some '=' -> two NE
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '<', Some '<' -> two SHL
      | '>', Some '>' -> two SHR
      | '&', Some '&' -> two ANDAND
      | '|', Some '|' -> two OROR
      | '=', _ -> one ASSIGN
      | '!', _ -> one BANG
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '&', _ -> one AMP
      | '|', _ -> one PIPE
      | '^', _ -> one CARET
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | _, _ -> raise (Error (Printf.sprintf "line %d: bad character %c" !line c))
    end
  done;
  push EOF;
  Array.of_list (List.rev !out)
