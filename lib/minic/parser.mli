(** Recursive-descent parser for MiniC.

    Grammar sketch:
    {v
    program := top*
    top     := "int" "*"? ident ("[" INT "]")? ";"            (global)
             | "int" ident "(" params? ")" "{" decls stmts "}" (function)
    params  := "int" "*"? ident ("," "int" "*"? ident)*
    decls   := ("int" "*"? ident ("[" INT "]")? ";")*
    stmt    := lvalue "=" expr ";" | expr ";" | "if" | "while" | "for"
             | "return" expr? ";" | "output" "(" expr ")" ";"
             | "break" ";" | "continue" ";"
    v}
    Operator precedence follows C.  [input(n)] reads input channel [n]. *)

exception Error of string

val parse : string -> Ast.program
