module Mir = Ipds_mir
module B = Mir.Builder

exception Error of string

let err fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type env = {
  fb : B.fb;
  globals : (string, Mir.Var.t) Hashtbl.t;
  locals : (string, Mir.Var.t) Hashtbl.t;
  (* names declared with [n]: indexing means array cells, not pointer
     arithmetic (a size-1 array is still an array) *)
  array_names : (string, unit) Hashtbl.t;
  funcs : (string, int) Hashtbl.t;  (* name -> arity *)
  (* (break target, continue target) stack *)
  mutable loop_stack : (B.label * B.label) list;
  mutable fresh_labels : int;
}

let is_array env name = Hashtbl.mem env.array_names name

let lookup_var env name =
  match Hashtbl.find_opt env.locals name with
  | Some v -> Some v
  | None -> Hashtbl.find_opt env.globals name

let var env name =
  match lookup_var env name with
  | Some v -> v
  | None -> err "unknown variable %s" name

let new_label env hint =
  env.fresh_labels <- env.fresh_labels + 1;
  B.new_label env.fb (Printf.sprintf "%s%d" hint env.fresh_labels)

(* If the previous statement terminated the block (return/break), open an
   unreachable continuation block so that straggling code still compiles. *)
let ensure_open env =
  if not (B.in_block env.fb) then B.set_block env.fb (new_label env "dead")

let rec gen_expr env (e : Ast.expr) : Mir.Operand.t =
  match e with
  | Ast.Int_lit n -> Mir.Operand.imm n
  | Ast.Var name ->
      let v = var env name in
      Mir.Operand.reg (B.load env.fb (Mir.Addr.Direct v))
  | Ast.Index (name, idx) ->
      let v = var env name in
      let i = gen_expr env idx in
      if is_array env name then
        Mir.Operand.reg (B.load env.fb (Mir.Addr.Index (v, i)))
      else begin
        (* C pointer indexing: p[i] is *(p + i) for pointer-valued p *)
        let p = B.load env.fb (Mir.Addr.Direct v) in
        let addr = B.binop env.fb Mir.Binop.Add (Mir.Operand.reg p) i in
        Mir.Operand.reg (B.load env.fb (Mir.Addr.Indirect addr))
      end
  | Ast.Addr_of (name, idx) ->
      let v = var env name in
      let i =
        match idx with
        | Some e -> gen_expr env e
        | None -> Mir.Operand.imm 0
      in
      if (not (is_array env name)) && idx <> None then begin
        (* &p[i] on a pointer-valued scalar is p + i *)
        let p = B.load env.fb (Mir.Addr.Direct v) in
        Mir.Operand.reg (B.binop env.fb Mir.Binop.Add (Mir.Operand.reg p) i)
      end
      else Mir.Operand.reg (B.addr_of env.fb v i)
  | Ast.Unary (Ast.Neg, e) ->
      Mir.Operand.reg (B.binop env.fb Mir.Binop.Sub (Mir.Operand.imm 0) (gen_expr env e))
  | Ast.Unary (Ast.Not, _) | Ast.Binary ((Ast.Cmp _ | Ast.And | Ast.Or), _, _) ->
      gen_bool env e
  | Ast.Unary (Ast.Deref, e) -> (
      match gen_expr env e with
      | Mir.Operand.Reg r -> Mir.Operand.reg (B.load env.fb (Mir.Addr.Indirect r))
      | Mir.Operand.Imm _ -> err "dereference of integer literal")
  | Ast.Binary (Ast.Arith op, a, bx) ->
      let va = gen_expr env a in
      let vb = gen_expr env bx in
      Mir.Operand.reg (B.binop env.fb op va vb)
  | Ast.Call (name, args) -> Mir.Operand.reg (gen_call env name args)
  | Ast.Input ch -> Mir.Operand.reg (B.input env.fb ch)

and gen_call env name args =
  (match Hashtbl.find_opt env.funcs name with
  | Some arity ->
      if arity <> List.length args then
        err "call %s: expected %d arguments, got %d" name arity (List.length args)
  | None ->
      if not (List.mem_assoc name Mir.Extern.default_table) then
        err "call to unknown function %s" name);
  let argv = List.map (gen_expr env) args in
  B.call env.fb name argv

(* Materialise a boolean expression as 0/1 through control flow. *)
and gen_bool env e =
  let fb = env.fb in
  let true_l = new_label env "btrue" in
  let false_l = new_label env "bfalse" in
  let join_l = new_label env "bjoin" in
  let r = B.fresh fb in
  gen_cond env e true_l false_l;
  B.set_block fb true_l;
  B.emit fb (Mir.Op.Const (r, 1));
  B.jump fb join_l;
  B.set_block fb false_l;
  B.emit fb (Mir.Op.Const (r, 0));
  B.jump fb join_l;
  B.set_block fb join_l;
  Mir.Operand.reg r

(* Branch to [tl] when the condition holds, [fl] otherwise.  Comparisons
   compile into single conditional branches, which is what gives IPDS its
   range information. *)
and gen_cond env (e : Ast.expr) tl fl =
  let fb = env.fb in
  match e with
  | Ast.Binary (Ast.Cmp cmp, a, bx) ->
      let va = gen_expr env a in
      let vb = gen_expr env bx in
      let ra =
        match va with
        | Mir.Operand.Reg r -> r
        | Mir.Operand.Imm n -> B.const fb n
      in
      B.branch fb cmp ra vb tl fl
  | Ast.Unary (Ast.Not, inner) -> gen_cond env inner fl tl
  | Ast.Binary (Ast.And, a, bx) ->
      let mid = new_label env "and" in
      gen_cond env a mid fl;
      B.set_block fb mid;
      gen_cond env bx tl fl
  | Ast.Binary (Ast.Or, a, bx) ->
      let mid = new_label env "or" in
      gen_cond env a tl mid;
      B.set_block fb mid;
      gen_cond env bx tl fl
  | Ast.Int_lit _ | Ast.Var _ | Ast.Index _ | Ast.Addr_of _
  | Ast.Unary ((Ast.Neg | Ast.Deref), _)
  | Ast.Binary (Ast.Arith _, _, _)
  | Ast.Call _ | Ast.Input _ ->
      let v = gen_expr env e in
      let r =
        match v with
        | Mir.Operand.Reg r -> r
        | Mir.Operand.Imm n -> B.const fb n
      in
      B.branch fb Mir.Cmp.Ne r (Mir.Operand.imm 0) tl fl

let gen_assign env (lv : Ast.lvalue) rhs_op =
  match lv with
  | Ast.Lvar name -> B.store env.fb (Mir.Addr.Direct (var env name)) rhs_op
  | Ast.Lindex (name, idx) ->
      let v = var env name in
      let i = gen_expr env idx in
      if is_array env name then B.store env.fb (Mir.Addr.Index (v, i)) rhs_op
      else begin
        let p = B.load env.fb (Mir.Addr.Direct v) in
        let addr = B.binop env.fb Mir.Binop.Add (Mir.Operand.reg p) i in
        B.store env.fb (Mir.Addr.Indirect addr) rhs_op
      end
  | Ast.Lderef e -> (
      match gen_expr env e with
      | Mir.Operand.Reg r -> B.store env.fb (Mir.Addr.Indirect r) rhs_op
      | Mir.Operand.Imm _ -> err "dereference of integer literal")

let rec gen_stmt env (s : Ast.stmt) =
  ensure_open env;
  let fb = env.fb in
  match s with
  | Ast.Assign (lv, e) ->
      let rhs = gen_expr env e in
      gen_assign env lv rhs
  | Ast.Expr e -> ignore (gen_expr env e)
  | Ast.Output e -> B.output fb (gen_expr env e)
  | Ast.Return e ->
      let v =
        match e with
        | Some e -> gen_expr env e
        | None -> Mir.Operand.imm 0
      in
      B.ret fb (Some v)
  | Ast.If (c, then_b, else_b) ->
      let tl = new_label env "then" in
      let el = new_label env "else" in
      let join = new_label env "join" in
      gen_cond env c tl el;
      B.set_block fb tl;
      gen_stmts env then_b;
      if B.in_block fb then B.jump fb join;
      B.set_block fb el;
      gen_stmts env else_b;
      if B.in_block fb then B.jump fb join;
      B.set_block fb join
  | Ast.While (c, body) ->
      let head = new_label env "while" in
      let body_l = new_label env "body" in
      let exit_l = new_label env "endwhile" in
      B.jump fb head;
      B.set_block fb head;
      gen_cond env c body_l exit_l;
      B.set_block fb body_l;
      env.loop_stack <- (exit_l, head) :: env.loop_stack;
      gen_stmts env body;
      env.loop_stack <- List.tl env.loop_stack;
      if B.in_block fb then B.jump fb head;
      B.set_block fb exit_l
  | Ast.For (init, cond, step, body) ->
      Option.iter (gen_stmt env) init;
      ensure_open env;
      let head = new_label env "for" in
      let body_l = new_label env "forbody" in
      let step_l = new_label env "forstep" in
      let exit_l = new_label env "endfor" in
      B.jump fb head;
      B.set_block fb head;
      (match cond with
      | Some c -> gen_cond env c body_l exit_l
      | None -> B.jump fb body_l);
      B.set_block fb body_l;
      env.loop_stack <- (exit_l, step_l) :: env.loop_stack;
      gen_stmts env body;
      env.loop_stack <- List.tl env.loop_stack;
      if B.in_block fb then B.jump fb step_l;
      B.set_block fb step_l;
      Option.iter (gen_stmt env) step;
      ensure_open env;
      B.jump fb head;
      B.set_block fb exit_l
  | Ast.Break -> (
      match env.loop_stack with
      | (exit_l, _) :: _ -> B.jump fb exit_l
      | [] -> err "break outside loop")
  | Ast.Continue -> (
      match env.loop_stack with
      | (_, cont_l) :: _ -> B.jump fb cont_l
      | [] -> err "continue outside loop")

and gen_stmts env stmts = List.iter (gen_stmt env) stmts

let compile (p : Ast.program) =
  let b = B.create () in
  B.declare_default_externs b;
  let globals = Hashtbl.create 16 in
  let global_arrays = Hashtbl.create 16 in
  List.iter
    (fun (d : Ast.decl) ->
      if Hashtbl.mem globals d.d_name then err "duplicate global %s" d.d_name;
      if d.d_size <> None then Hashtbl.replace global_arrays d.d_name ();
      Hashtbl.replace globals d.d_name (B.global b ?size:d.d_size d.d_name))
    p.p_globals;
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem funcs f.f_name then err "duplicate function %s" f.f_name;
      if List.mem_assoc f.f_name Mir.Extern.default_table then
        err "function %s shadows a runtime external" f.f_name;
      Hashtbl.replace funcs f.f_name (List.length f.f_params))
    p.p_funcs;
  List.iter
    (fun (f : Ast.func) ->
      B.func b f.f_name ~nparams:(List.length f.f_params) (fun fb params ->
          let env =
            {
              fb;
              globals;
              locals = Hashtbl.create 16;
              array_names = Hashtbl.copy global_arrays;
              funcs;
              loop_stack = [];
              fresh_labels = 0;
            }
          in
          (* Parameters spill to memory at entry: -O0 style. *)
          List.iter2
            (fun name r ->
              if Hashtbl.mem env.locals name then err "duplicate parameter %s" name;
              let v = B.local fb name in
              Hashtbl.replace env.locals name v;
              Hashtbl.remove env.array_names name;
              B.store fb (Mir.Addr.Direct v) (Mir.Operand.reg r))
            f.f_params params;
          List.iter
            (fun (d : Ast.decl) ->
              if Hashtbl.mem env.locals d.d_name then
                err "duplicate local %s" d.d_name;
              (* a local declaration shadows any same-named global *)
              if d.d_size <> None then Hashtbl.replace env.array_names d.d_name ()
              else Hashtbl.remove env.array_names d.d_name;
              Hashtbl.replace env.locals d.d_name
                (B.local fb ?size:d.d_size d.d_name))
            f.f_locals;
          gen_stmts env f.f_body;
          if B.in_block fb then B.ret fb (Some (Mir.Operand.imm 0))))
    p.p_funcs;
  B.finish b
