(** Abstract syntax of MiniC, the small C-like language the workloads are
    written in.

    The language is deliberately C89-shaped: scalar [int]s, fixed-size
    [int] arrays, pointers obtained with [&], dereference with [*],
    functions, [if]/[while]/[for], and calls to the extern runtime
    ([read_line], [recv], [strcmp], …).  Every variable is memory-resident
    (compiled without register promotion), matching the machine model the
    paper analyses. *)

type unop =
  | Neg
  | Not  (** logical: [!e] is [e == 0] *)
  | Deref

type binop =
  | Arith of Ipds_mir.Binop.t
  | Cmp of Ipds_mir.Cmp.t
  | And  (** short-circuit *)
  | Or

type expr =
  | Int_lit of int
  | Var of string
  | Index of string * expr  (** [a\[e\]] *)
  | Addr_of of string * expr option  (** [&v] or [&a\[e\]] *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list
  | Input of int  (** [input(ch)] *)

type lvalue =
  | Lvar of string
  | Lindex of string * expr
  | Lderef of expr

type stmt =
  | Assign of lvalue * expr
  | Expr of expr  (** evaluated for effect (calls) *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Output of expr
  | Break
  | Continue

type decl = {
  d_name : string;
  d_size : int option;  (** [Some n] for arrays *)
}

type func = {
  f_name : string;
  f_params : string list;  (** scalar int / pointer parameters *)
  f_locals : decl list;
  f_body : stmt list;
}

type program = {
  p_globals : decl list;
  p_funcs : func list;
}
