(* The ipds command-line tool: analyze, run, attack, and benchmark MIR or
   MiniC programs under the Infeasible Path Detection System.

     ipds analyze  FILE          show depends, BAT/BCV and table sizes
     ipds run      FILE          execute under the checker
     ipds attack   FILE          run a tamper campaign
     ipds perf     FILE          timing model, baseline vs IPDS
     ipds compile  FILE -o F     analyze and save a .ipds object file
     ipds inspect  FILE          section/CRC report of a .ipds file or image
     ipds serve                  run the streaming verdict server
     ipds fleet --shards N       run N servers sharded by artifact key
     ipds check-remote FILE      verify remote checking against in-process
     ipds servers                list the built-in server workloads

   FILE ending in .c/.mc is treated as MiniC, a file starting with the
   IPDS object magic as a prebuilt artifact (analysis skipped), anything
   else as textual MIR.  Built-in workloads can be named with '@name'
   (e.g. @telnetd).  --cache-dir/--no-cache control the content-addressed
   artifact cache (default: IPDS_CACHE_DIR).  --metrics-out FILE writes a
   JSON {manifest, metrics, runtime} summary on exit; --events FILE (or
   IPDS_EVENTS) streams structured JSONL events. *)

module Mir = Ipds_mir
module Core = Ipds_core
module M = Ipds_machine
module P = Ipds_pipeline
module W = Ipds_workloads.Workloads
module A = Ipds_artifact.Artifact
module Store = Ipds_artifact.Store
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

(* Every source of programs resolves to a full system: built-in
   workloads ride the artifact-aware Workloads.system path, .ipds files
   are loaded directly (no front end, no analysis), and plain sources
   are compiled and analyzed here.  [jobs] fans the per-function
   analysis passes over a domain pool; the system is byte-identical for
   any value. *)
let load_system ?(jobs = 1) ?options path =
  if String.length path > 1 && path.[0] = '@' then
    Ipds_parallel.Pool.with_opt ~jobs (fun pool ->
        W.system ?options ?pool
          (W.find (String.sub path 1 (String.length path - 1))))
  else if A.is_artifact_file path then begin
    (* prebuilt artifacts carry their analysis; options don't apply *)
    try A.load_file path
    with A.Corrupt msg ->
      Format.eprintf
        "ipds: %s: corrupt artifact (%s); re-create it with 'ipds compile'@."
        path msg;
      exit 1
  end
  else begin
    let src = read_file path in
    let program =
      if Filename.check_suffix path ".c" || Filename.check_suffix path ".mc"
      then Ipds_minic.Minic.compile src
      else Mir.Parser.program_of_string src
    in
    Ipds_parallel.Pool.with_opt ~jobs (fun pool ->
        Core.System.cached_build ?options ?pool program)
  end

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:
          "Program file (.c/.mc MiniC, .ipds prebuilt artifact, else MIR), or \
           @name for a built-in server.")

(* Evaluated before any command body runs, so the ambient store is
   configured by the time load_system consults it. *)
let cache_term =
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Load and publish prebuilt .ipds artifacts under $(docv) \
             (default: the IPDS_CACHE_DIR environment variable).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the artifact cache, ignoring IPDS_CACHE_DIR.")
  in
  let apply dir off =
    if off then Store.set_ambient_dir None
    else Option.iter (fun d -> Store.set_ambient_dir (Some d)) dir
  in
  Term.(const apply $ cache_dir $ no_cache)

(* ---------- observability ---------- *)

module Obs = Ipds_obs

type obs_opts = { metrics_out : string option; events : string option }

let obs_term =
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write a JSON summary of the run (manifest, deterministic \
             metrics, runtime metrics and span timers) to $(docv) on exit.")
  in
  let events =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Stream structured JSONL events (one object per line, first \
             line is the run manifest) to $(docv) (default: the \
             IPDS_EVENTS environment variable).")
  in
  let make metrics_out events =
    {
      metrics_out;
      events =
        (match events with
        | Some _ as e -> e
        | None -> Sys.getenv_opt "IPDS_EVENTS");
    }
  in
  Term.(const make $ metrics_out $ events)

(* Called at the start of each command body, after the manifest extras
   (seed, attack count…) are known, so the event stream's manifest
   header is complete. *)
let obs_init ?(manifest = []) ~command obs =
  Obs.Manifest.set_string "tool" "ipds";
  Obs.Manifest.set_string "command" command;
  Obs.Manifest.set_int "artifact_format_version"
    Ipds_artifact.Object_file.format_version;
  List.iter (fun (k, v) -> Obs.Manifest.set k v) manifest;
  (match obs.events with Some _ as p -> Obs.Events.set_path p | None -> ());
  at_exit (fun () ->
      Obs.Events.close ();
      match obs.metrics_out with
      | None -> ()
      | Some path ->
          Obs.Json.write_file path
            (Obs.Json.Obj
               [
                 ("manifest", Obs.Manifest.to_json ());
                 ("metrics", Obs.Registry.snapshot_json ~stability:`Stable ());
                 ( "runtime",
                   Obs.Json.Obj
                     [
                       ( "metrics",
                         Obs.Registry.snapshot_json ~stability:`Unstable () );
                       ("spans", Obs.Span.snapshot_json ());
                     ] );
               ]))

let seed_arg =
  Arg.(value & opt int 2006 & info [ "seed" ] ~doc:"PRNG seed for inputs/attacks.")

let steps_arg =
  Arg.(value & opt int 500_000 & info [ "max-steps" ] ~doc:"Execution step cap.")

(* ---------- analyze ---------- *)

(* --jobs for the compile-side commands: fans the per-function passes
   out; output is byte-identical for any value. *)
let build_jobs_arg =
  Arg.(
    value
    & opt int (Ipds_parallel.Pool.default_jobs ())
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains for the per-function analysis passes (default: \
           cores - 1, or the IPDS_JOBS environment variable); 1 is strictly \
           sequential.  The resulting tables and artifacts are byte-identical \
           for any value.")

(* --precision for the compile-side commands.  [off] is the historical
   single-pass analysis (byte-identical artifacts and cache keys); [on]
   iterates analysis and feasibility pruning to a fixpoint. *)
let precision_arg =
  Arg.(
    value
    & opt (enum [ ("off", `Off); ("on", `On) ]) `Off
    & info [ "precision" ] ~docv:"MODE"
        ~doc:
          "Feasible-path refinement: $(b,on) prunes infeasible branch \
           directions and re-analyzes on the tightened CFG (up to a \
           per-function iteration cap), which can expose correlations \
           spurious paths hid; $(b,off) (default) is the historical \
           single-pass analysis with byte-identical output.")

let options_of_precision = function
  | `Off -> None
  | `On ->
      Some
        {
          Ipds_correlation.Analysis.default_options with
          Ipds_correlation.Analysis.precision =
            Ipds_correlation.Analysis.precision_on;
        }

(* Satellite of the refine pass: one line per function with what the
   flywheel bought.  Loaded artifacts carry no stats, so this prints
   only for freshly analyzed functions under --precision on. *)
let print_feasibility_summary (system : Core.System.t) =
  let module R = Ipds_correlation.Refine in
  let any =
    List.exists
      (fun (_, (i : Core.System.func_info)) -> i.Core.System.refine <> None)
      system.Core.System.funcs
  in
  if any then begin
    Format.printf "feasibility refinement (per function):@.";
    List.iter
      (fun (name, (i : Core.System.func_info)) ->
        match i.Core.System.refine with
        | None -> ()
        | Some s ->
            Format.printf
              "  %-16s pruned %d/%d directions  correlations %d -> %d  (%d \
               iteration%s)@."
              name s.R.edges_pruned s.R.total_directions
              s.R.correlations_before s.R.correlations_after s.R.iterations
              (if s.R.iterations = 1 then "" else "s"))
      system.Core.System.funcs
  end

let print_pass_report () =
  Format.printf "per-pass breakdown (units stable, seconds wall-clock):@.%s"
    (Ipds_pass.Pass.render_report (Ipds_pass.Pass.report ()))

let analyze_cmd =
  let run () obs file jobs precision =
    obs_init ~command:"analyze"
      ~manifest:
        [ ("file", Obs.Json.String file); ("jobs", Obs.Json.Int jobs) ]
      obs;
    let system = load_system ~jobs ?options:(options_of_precision precision) file in
    List.iter
      (fun (_, (i : Core.System.func_info)) ->
        Format.printf "%a@.%a@.@."
          Ipds_correlation.Analysis.pp_result i.result Core.Tables.pp i.tables)
      system.Core.System.funcs;
    print_feasibility_summary system;
    let stats = Core.System.size_stats system in
    Format.printf "checked %d of %d branches; avg bits: BSV %.1f BCV %.1f BAT %.1f@."
      (Core.System.checked_branch_count system)
      (Core.System.total_branch_count system)
      stats.Core.System.avg_bsv_bits stats.Core.System.avg_bcv_bits
      stats.Core.System.avg_bat_bits;
    print_pass_report ()
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the compile-side correlation analysis and show the tables.")
    Term.(
      const run $ cache_term $ obs_term $ file_arg $ build_jobs_arg
      $ precision_arg)

(* ---------- run ---------- *)

let run_cmd =
  let run () obs file seed max_steps =
    obs_init ~command:"run"
      ~manifest:
        [ ("file", Obs.Json.String file); ("seed", Obs.Json.Int seed) ]
      obs;
    let system = load_system file in
    let program = system.Core.System.program in
    let checker = Core.System.new_checker system in
    let o =
      M.Interp.run program
        {
          M.Interp.default_config with
          max_steps;
          inputs = M.Input_script.random ~seed ();
          checker = Some checker;
        }
    in
    Format.printf "steps: %d, branches: %d@." o.M.Interp.steps o.M.Interp.branches;
    Format.printf "outputs: %s@."
      (String.concat " " (List.map string_of_int o.M.Interp.outputs));
    Format.printf "stop: %s@."
      (match o.M.Interp.reason with
      | M.Interp.Exited v -> Format.asprintf "exit %a" M.Value.pp v
      | M.Interp.Halted -> "halt"
      | M.Interp.Fault m -> "fault: " ^ m
      | M.Interp.Out_of_steps -> "step cap"
      | M.Interp.Trapped a ->
          Format.asprintf "IPDS trap at pc 0x%x" a.Core.Checker.branch_pc);
    match o.M.Interp.alarms with
    | [] -> Format.printf "alarms: none@."
    | alarms ->
        List.iter
          (fun (a : Core.Checker.alarm) ->
            Format.printf "ALARM: %s pc 0x%x expected %a went %s@." a.fname
              a.branch_pc Core.Status.pp a.expected
              (if a.actual_taken then "taken" else "not-taken"))
          alarms
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute the program under the IPDS runtime checker.")
    Term.(const run $ cache_term $ obs_term $ file_arg $ seed_arg $ steps_arg)

(* ---------- attack ---------- *)

let attack_cmd =
  let attacks_arg =
    Arg.(value & opt int 100 & info [ "n"; "attacks" ] ~doc:"Number of injected attacks.")
  in
  let model_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("overflow", `Stack_overflow);
               ("arbitrary", `Arbitrary_write);
               (* "mem" is the universe spelling of the memory scenario;
                  with no per-workload vulnerability class attached to a
                  FILE it means an arbitrary write *)
               ("mem", `Arbitrary_write);
               ("cond-flip", `Cond_flip);
               ("insn-skip", `Insn_skip);
             ])
          `Arbitrary_write
      & info [ "model" ]
          ~doc:
            "Tamper model: overflow (active frame), arbitrary or mem (any \
             live cell), cond-flip (invert one committed branch), insn-skip \
             (skip one committed branch).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int (Ipds_parallel.Pool.default_jobs ())
      & info [ "j"; "jobs" ]
          ~doc:
            "Worker domains for the campaign (default: cores - 1, or the \
             IPDS_JOBS environment variable); 1 is strictly sequential.  \
             Results are identical for any value.")
  in
  let run () obs file seed attacks model jobs =
    obs_init ~command:"attack"
      ~manifest:
        [
          ("file", Obs.Json.String file);
          ("seed", Obs.Json.Int seed);
          ("attacks", Obs.Json.Int attacks);
          ("jobs", Obs.Json.Int jobs);
        ]
      obs;
    let system = load_system file in
    let program = system.Core.System.program in
    match
      Ipds_parallel.Pool.with_opt ~jobs (fun pool ->
          Ipds_harness.Attack_experiment.campaign ~system ?pool ~attacks ~seed
            ~model ~name:file program)
    with
    | row ->
        Format.printf "attacks injected: %d@." row.Ipds_harness.Attack_experiment.attacks;
        Format.printf "changed control flow: %d@."
          row.Ipds_harness.Attack_experiment.cf_changed;
        Format.printf "detected by IPDS: %d@."
          row.Ipds_harness.Attack_experiment.detected
    | exception Ipds_harness.Attack_experiment.False_positive msg ->
        Format.eprintf "FALSE POSITIVE (soundness violation): %s@." msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run a randomized memory-tampering campaign against the program.")
    Term.(
      const run $ cache_term $ obs_term $ file_arg $ seed_arg $ attacks_arg
      $ model_arg $ jobs_arg)

(* ---------- perf ---------- *)

let perf_cmd =
  let run () obs file seed =
    obs_init ~command:"perf"
      ~manifest:
        [ ("file", Obs.Json.String file); ("seed", Obs.Json.Int seed) ]
      obs;
    let system = load_system file in
    let program = system.Core.System.program in
    let drive cpu =
      ignore
        (M.Interp.run program
           {
             M.Interp.default_config with
             inputs = M.Input_script.random ~seed ();
             observer = Some (P.Cpu.observer cpu);
           })
    in
    let base_cpu = P.Cpu.create ~system:None () in
    let ipds_cpu = P.Cpu.create ~system:(Some system) () in
    drive base_cpu;
    drive ipds_cpu;
    let base = P.Cpu.finish base_cpu in
    let ipds = P.Cpu.finish ipds_cpu in
    Format.printf "baseline:@.%a@.@.with IPDS:@.%a@." P.Cpu.pp_report base
      P.Cpu.pp_report ipds;
    Format.printf "@.normalized: %.4f@." (ipds.P.Cpu.cycles /. base.P.Cpu.cycles)
  in
  Cmd.v
    (Cmd.info "perf" ~doc:"Compare cycle counts with and without the IPDS engine.")
    Term.(const run $ cache_term $ obs_term $ file_arg $ seed_arg)

(* ---------- trace ---------- *)

let trace_cmd =
  let limit_arg =
    Arg.(value & opt int 200 & info [ "limit" ] ~doc:"Maximum lines printed.")
  in
  let run () obs file seed limit =
    obs_init ~command:"trace"
      ~manifest:
        [ ("file", Obs.Json.String file); ("seed", Obs.Json.Int seed) ]
      obs;
    let system = load_system file in
    let program = system.Core.System.program in
    let log_lines = ref 0 in
    let log =
      Core.Trace_log.create
        ~lookup:(Core.System.image system)
        ~out:(fun line ->
          if !log_lines < limit then print_endline line
          else if !log_lines = limit then print_endline "... (truncated)";
          incr log_lines)
    in
    let observer (e : M.Event.t) =
      match e.M.Event.kind with
      | M.Event.Call { callee } ->
          if Mir.Program.is_defined program callee then Core.Trace_log.on_call log callee
      | M.Event.Ret -> Core.Trace_log.on_return log
      | M.Event.Branch { taken; _ } ->
          ignore (Core.Trace_log.on_branch log ~pc:e.M.Event.pc ~taken)
      | M.Event.Alu | M.Event.Load _ | M.Event.Store _ | M.Event.Jump _
      | M.Event.Input_read | M.Event.Output_write _ | M.Event.Fault_inject _ ->
          ()
    in
    let o =
      M.Interp.run program
        {
          M.Interp.default_config with
          inputs = M.Input_script.random ~seed ();
          observer = Some observer;
        }
    in
    Core.Checker.flush (Core.Trace_log.checker log);
    Format.printf "(%d branches, %d alarms)@." o.M.Interp.branches
      (Core.Checker.alarm_count (Core.Trace_log.checker log))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run the program and log every IPDS verify/update decision.")
    Term.(const run $ cache_term $ obs_term $ file_arg $ seed_arg $ limit_arg)

(* ---------- compile / encode / inspect ---------- *)

let compile_cmd =
  let out_arg =
    Arg.(
      value & opt string "prog.ipds"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output .ipds object file.")
  in
  let run () obs file out jobs precision =
    obs_init ~command:"compile"
      ~manifest:
        [ ("file", Obs.Json.String file); ("jobs", Obs.Json.Int jobs) ]
      obs;
    let system = load_system ~jobs ?options:(options_of_precision precision) file in
    A.save_file out system;
    let bytes = (Unix.stat out).Unix.st_size in
    Format.printf "wrote %d bytes (%d functions, %d/%d branches checked) to %s@."
      bytes
      (List.length system.Core.System.funcs)
      (Core.System.checked_branch_count system)
      (Core.System.total_branch_count system)
      out;
    print_feasibility_summary system;
    print_pass_report ()
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Analyze the program and save a checksummed .ipds object file; \
          'ipds run/attack/perf' load it back without re-running the front \
          end or the analysis.")
    Term.(
      const run $ cache_term $ obs_term $ file_arg $ out_arg $ build_jobs_arg
      $ precision_arg)

let encode_cmd =
  let out_arg =
    Arg.(value & opt string "tables.img" & info [ "o"; "output" ] ~doc:"Output image file.")
  in
  let run () file out =
    let system = load_system file in
    let image = Core.Encode.program_image system in
    let oc = open_out_bin out in
    output_bytes oc image;
    close_out oc;
    Format.printf "wrote %d bytes (%d functions) to %s@." (Bytes.length image)
      (List.length system.Core.System.funcs)
      out
  in
  Cmd.v
    (Cmd.info "encode"
       ~doc:"Serialize the BSV/BCV/BAT tables into the binary image the compiler \
             would attach to the executable.")
    Term.(const run $ cache_term $ file_arg $ out_arg)

let inspect_cmd =
  let image_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:".ipds object file or raw table image.")
  in
  let run path =
    if A.is_artifact_file path then
      Format.printf "%a@." A.pp_inspection (A.inspect_file path)
    else begin
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let image = Bytes.create n in
      really_input ic image 0 n;
      close_in ic;
      List.iter
        (fun (name, (entry_pc, tables)) ->
          let s = Core.Tables.sizes tables in
          Format.printf "%-16s entry 0x%x  %a  %d branches  BSV %d / BCV %d / BAT %d bits@."
            name entry_pc Core.Hash.pp tables.Core.Tables.hash
            tables.Core.Tables.n_branches s.Core.Tables.bsv_bits s.Core.Tables.bcv_bits
            s.Core.Tables.bat_bits)
        (Core.Encode.load_program image)
    end
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Print the section/CRC report of a .ipds object file (flagging any \
          corruption), or the function information table of a raw encoded \
          image.")
    Term.(const run $ image_arg)

(* ---------- serve / check-remote ---------- *)

module Serve = Ipds_serve

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the verdict server.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Loopback TCP port of the verdict server (0 picks a free one).")

let serve_cmd =
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ]
          ~doc:
            "Worker domains serving sessions; 1 handles sessions strictly \
             sequentially.  Verdicts and the stable serve.* metrics are \
             identical for any value.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 30.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-session idle timeout; a silent client gets a typed timeout \
             error and its session closed.  0 disables the timeout.")
  in
  let max_frame_arg =
    Arg.(
      value
      & opt int Serve.Protocol.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:
            "Largest accepted frame payload; oversized frames are rejected \
             with a typed error before being read.")
  in
  let cache_slots_arg =
    Arg.(
      value & opt int 8
      & info [ "cache-slots" ]
          ~doc:"Loaded artifacts kept resident in the server's LRU.")
  in
  let cache_shards_arg =
    Arg.(
      value & opt int Serve.Server.default_config.Serve.Server.cache_shards
      & info [ "cache-shards" ]
          ~doc:
            "Lock shards of the server's artifact cache; higher values \
             reduce contention between concurrent cold loads.")
  in
  let peer_socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "peer-socket" ] ~docv:"PATH"
          ~doc:
            "Base Unix-socket path of a fleet to warm the artifact store \
             from: on a store miss the artifact is fetched (and verified) \
             from ring peers instead of answering unknown-artifact.  \
             Requires $(b,--peer-shards) and $(b,--peer-self).")
  in
  let peer_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "peer-port" ] ~docv:"PORT"
          ~doc:"TCP variant of $(b,--peer-socket): peer shard i listens on \
                $(docv)+i.")
  in
  let peer_shards_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "peer-shards" ] ~docv:"N"
          ~doc:"Shard count of the peer fleet.")
  in
  let peer_self_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "peer-self" ] ~docv:"I"
          ~doc:
            "This server's own shard index in the peer fleet (never asked \
             during a peer fetch).")
  in
  let run () obs socket port jobs timeout max_frame cache_slots cache_shards
      peer_socket peer_port peer_shards peer_self =
    obs_init ~command:"serve"
      ~manifest:[ ("jobs", Obs.Json.Int jobs) ]
      obs;
    let addr =
      match (socket, port) with
      | Some path, None -> `Unix path
      | None, Some p -> `Tcp p
      | None, None ->
          Format.eprintf "ipds serve: one of --socket or --port is required@.";
          exit 2
      | Some _, Some _ ->
          Format.eprintf "ipds serve: --socket and --port are mutually exclusive@.";
          exit 2
    in
    let peers =
      match (peer_socket, peer_port, peer_shards, peer_self) with
      | None, None, None, None -> None
      | _, _, None, _ | _, _, _, None ->
          Format.eprintf
            "ipds serve: peer sharing needs all of --peer-socket/--peer-port, \
             --peer-shards and --peer-self@.";
          exit 2
      | Some _, Some _, _, _ ->
          Format.eprintf
            "ipds serve: --peer-socket and --peer-port are mutually \
             exclusive@.";
          exit 2
      | None, None, Some _, Some _ ->
          Format.eprintf
            "ipds serve: peer sharing needs one of --peer-socket or \
             --peer-port@.";
          exit 2
      | base, port_base, Some n, Some self ->
          if n < 1 then begin
            Format.eprintf "ipds serve: --peer-shards must be >= 1 (got %d)@." n;
            exit 2
          end;
          if self < 0 || self >= n then begin
            Format.eprintf
              "ipds serve: --peer-self must be in [0, %d) (got %d)@." n self;
            exit 2
          end;
          let peer_base =
            match (base, port_base) with
            | Some path, None -> `Unix path
            | None, Some p -> `Tcp ("127.0.0.1", p)
            | _ -> assert false
          in
          Some
            {
              Serve.Server.peer_topology =
                Ipds_fleet.Topology.create ~shards:n peer_base;
              peer_self = self;
              peer_backoff = Ipds_fleet.Backoff.default;
            }
    in
    let config =
      {
        Serve.Server.default_config with
        Serve.Server.jobs = max 1 jobs;
        max_frame;
        session_timeout = timeout;
        cache_slots;
        cache_shards = max 1 cache_shards;
        store_dir = None;
        peers;
      }
    in
    let server =
      try Serve.Server.start ~config addr
      with Unix.Unix_error (err, _, _) ->
        (match addr with
        | `Unix path ->
            Format.eprintf "ipds serve: cannot listen on %s: %s@." path
              (Unix.error_message err)
        | `Tcp p ->
            Format.eprintf "ipds serve: cannot listen on port %d: %s@." p
              (Unix.error_message err));
        exit 1
    in
    (match addr with
    | `Unix path -> Format.printf "ipds serve: listening on %s@." path
    | `Tcp _ ->
        Format.printf "ipds serve: listening on 127.0.0.1:%d@."
          (Option.value (Serve.Server.port server) ~default:0));
    let stop_requested = Atomic.make false in
    let on_signal _ = Atomic.set stop_requested true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    while not (Atomic.get stop_requested) do
      try ignore (Unix.select [] [] [] 0.2)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    Format.printf "ipds serve: shutting down@.";
    Serve.Server.stop server
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the streaming verdict server: clients load an artifact over \
          the wire protocol, stream batched trace events and receive the \
          IPDS verdicts back.")
    Term.(
      const run $ cache_term $ obs_term $ socket_arg $ port_arg $ jobs_arg
      $ timeout_arg $ max_frame_arg $ cache_slots_arg $ cache_shards_arg
      $ peer_socket_arg $ peer_port_arg $ peer_shards_arg $ peer_self_arg)

let check_remote_cmd =
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~doc:"Server host when connecting over TCP.")
  in
  let batch_arg =
    Arg.(
      value & opt int Serve.Client.default_batch
      & info [ "batch" ]
          ~doc:"Checker-relevant events per wire frame (must be >= 1).")
  in
  let shards_arg =
    Arg.(
      value & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Treat the address as the base of an N-shard fleet and route \
             to the artifact's owning shard by consistent hashing, failing \
             over along the ring if it is down.")
  in
  let run () obs file socket host port seed max_steps batch shards =
    obs_init ~command:"check-remote"
      ~manifest:[ ("file", Obs.Json.String file); ("seed", Obs.Json.Int seed) ]
      obs;
    if batch < 1 then begin
      Format.eprintf "ipds check-remote: --batch must be >= 1 (got %d)@." batch;
      exit 2
    end;
    (match shards with
    | Some n when n < 1 ->
        Format.eprintf "ipds check-remote: --shards must be >= 1 (got %d)@." n;
        exit 2
    | _ -> ());
    let addr =
      match (socket, port) with
      | Some path, None -> `Unix path
      | None, Some p -> `Tcp (host, p)
      | _ ->
          Format.eprintf
            "ipds check-remote: exactly one of --socket or --port is required@.";
          exit 2
    in
    let system = load_system file in
    let program = system.Core.System.program in
    let image = Bytes.to_string (A.to_bytes system) in
    let client =
      match shards with
      | None -> (
          try Serve.Client.connect addr
          with Unix.Unix_error (err, _, _) ->
            (match addr with
            | `Unix path ->
                Format.eprintf "ipds check-remote: cannot connect to %s: %s@."
                  path (Unix.error_message err)
            | `Tcp (h, p) ->
                Format.eprintf "ipds check-remote: cannot connect to %s:%d: %s@."
                  h p (Unix.error_message err));
            exit 1)
      | Some n -> (
          let topology =
            Ipds_fleet.Topology.create ~shards:n
              (match addr with
              | `Unix path -> `Unix path
              | `Tcp (h, p) -> `Tcp (h, p))
          in
          let fc = Serve.Fleet_client.create topology in
          let key = Serve.Fleet_client.image_key image in
          match Serve.Fleet_client.connect_for_key fc key with
          | Ok routed ->
              Format.printf "routed to shard %d/%d%s@."
                routed.Serve.Fleet_client.shard n
                (match List.length routed.Serve.Fleet_client.skipped with
                | 0 -> ""
                | k -> Printf.sprintf " (%d dead shard%s skipped)" k
                         (if k = 1 then "" else "s"));
              routed.Serve.Fleet_client.client
          | Error e ->
              Format.eprintf "ipds check-remote: %s: %s@."
                (Serve.Protocol.error_code_to_string e.Serve.Protocol.code)
                e.Serve.Protocol.detail;
              exit 1)
    in
    let fail (e : Serve.Protocol.err) =
      Format.eprintf "ipds check-remote: remote error %s: %s@."
        (Serve.Protocol.error_code_to_string e.Serve.Protocol.code)
        e.Serve.Protocol.detail;
      exit 1
    in
    (match Serve.Client.load_image client ~name:file (Bytes.of_string image) with
    | Ok _ -> ()
    | Error e -> fail e);
    let tr =
      match Serve.Client.trace ~batch client with Ok t -> t | Error e -> fail e
    in
    (* One interpreter run, checked twice: inline by a local checker and
       remotely through the sink — the whole point of the sink hook. *)
    let checker = Core.System.new_checker system in
    let o =
      M.Interp.run program
        {
          M.Interp.default_config with
          max_steps;
          inputs = M.Input_script.random ~seed ();
          checker = Some checker;
          sink = Some tr.Serve.Client.sink;
        }
    in
    let remote, summary =
      match tr.Serve.Client.finish () with Ok r -> r | Error e -> fail e
    in
    Serve.Client.close client;
    let local = Core.Checker.alarms checker in
    Format.printf "steps: %d, branches: %d@." o.M.Interp.steps o.M.Interp.branches;
    Format.printf "remote: %d events, %d branches, %d alarms@."
      summary.Serve.Protocol.total_events summary.Serve.Protocol.total_branches
      summary.Serve.Protocol.total_alarms;
    let render = List.map Serve.Protocol.verdict_to_string in
    let local_r = render local and remote_r = render remote in
    if local_r = remote_r then begin
      List.iter (Format.printf "ALARM: %s@.") remote_r;
      Format.printf "remote verdicts match local checking (%d alarms)@."
        (List.length remote_r)
    end
    else begin
      Format.eprintf "MISMATCH: local %d alarms, remote %d alarms@."
        (List.length local_r) (List.length remote_r);
      List.iter (Format.eprintf "  local:  %s@.") local_r;
      List.iter (Format.eprintf "  remote: %s@.") remote_r;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "check-remote"
       ~doc:
         "Run the program locally while streaming its events to a verdict \
          server, then verify the remote verdicts are identical to the \
          in-process checker's (exit 1 on any divergence).")
    Term.(
      const run $ cache_term $ obs_term $ file_arg $ socket_arg $ host_arg
      $ port_arg $ seed_arg $ steps_arg $ batch_arg $ shards_arg)

(* ---------- fleet ---------- *)

let fleet_cmd =
  let shards_arg =
    Arg.(
      value & opt int 3
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Server processes to launch; artifact keys are spread over them \
             by consistent hashing on the client side.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~doc:"Reactor domains per shard process.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 30.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-session idle timeout forwarded to every shard.")
  in
  let cache_slots_arg =
    Arg.(
      value & opt int 8
      & info [ "cache-slots" ] ~doc:"Artifact LRU slots per shard process.")
  in
  let router_socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "router-socket" ] ~docv:"PATH"
          ~doc:
            "Also run the thin routing fallback on $(docv) so legacy \
             single-address clients reach the fleet (one extra hop).")
  in
  let router_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "router-port" ] ~docv:"PORT"
          ~doc:"TCP variant of $(b,--router-socket).")
  in
  let share_artifacts_arg =
    Arg.(
      value & flag
      & info [ "share-artifacts" ]
          ~doc:
            "Let shards warm their artifact stores from each other: a shard \
             missing a key fetches the (verified) artifact from its ring \
             peers over the wire instead of answering unknown-artifact.")
  in
  let run () obs socket port shards jobs timeout cache_slots router_socket
      router_port share_artifacts =
    obs_init ~command:"fleet"
      ~manifest:[ ("shards", Obs.Json.Int shards) ]
      obs;
    if shards < 1 then begin
      Format.eprintf "ipds fleet: --shards must be >= 1 (got %d)@." shards;
      exit 2
    end;
    let base =
      match (socket, port) with
      | Some path, None -> `Unix path
      | None, Some p when p > 0 -> `Tcp ("127.0.0.1", p)
      | None, Some _ ->
          Format.eprintf
            "ipds fleet: --port must be an explicit base port (shard i \
             listens on port+i)@.";
          exit 2
      | _ ->
          Format.eprintf "ipds fleet: one of --socket or --port is required@.";
          exit 2
    in
    let topology = Ipds_fleet.Topology.create ~shards base in
    let addr_args i =
      match Ipds_fleet.Topology.address topology i with
      | `Unix path -> [ "--socket"; path ]
      | `Tcp (_, p) -> [ "--port"; string_of_int p ]
    in
    let cache_args =
      match Option.map Store.dir (Store.ambient ()) with
      | Some dir -> [ "--cache-dir"; dir ]
      | None -> []
    in
    let peer_args i =
      if not share_artifacts then []
      else
        (match base with
        | `Unix path -> [ "--peer-socket"; path ]
        | `Tcp (_, p) -> [ "--peer-port"; string_of_int p ])
        @ [
            "--peer-shards"; string_of_int shards;
            "--peer-self"; string_of_int i;
          ]
    in
    let spawn i =
      let argv =
        Array.of_list
          ([ "ipds"; "serve" ] @ addr_args i @ cache_args @ peer_args i
          @ [
              "--jobs"; string_of_int jobs;
              "--timeout"; string_of_float timeout;
              "--cache-slots"; string_of_int cache_slots;
            ])
      in
      Unix.create_process Sys.executable_name argv Unix.stdin Unix.stdout
        Unix.stderr
    in
    let pids = Array.init shards spawn in
    (* Wait until every shard accepts connections before declaring the
       fleet up; a shard that dies during startup fails the launch. *)
    let ready i =
      let sockaddr =
        match Ipds_fleet.Topology.address topology i with
        | `Unix path -> Unix.ADDR_UNIX path
        | `Tcp (host, p) ->
            Unix.ADDR_INET (Unix.inet_addr_of_string host, p)
      in
      let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect fd sockaddr with
          | () -> true
          | exception Unix.Unix_error _ -> false)
    in
    let deadline = Unix.gettimeofday () +. 10.0 in
    for i = 0 to shards - 1 do
      let rec wait () =
        if ready i then ()
        else if fst (Unix.waitpid [ Unix.WNOHANG ] pids.(i)) <> 0 then begin
          Format.eprintf "ipds fleet: shard %d exited during startup@." i;
          Array.iter
            (fun pid ->
              try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
            pids;
          exit 1
        end
        else if Unix.gettimeofday () > deadline then begin
          Format.eprintf "ipds fleet: shard %d not accepting after 10s@." i;
          exit 1
        end
        else begin
          Unix.sleepf 0.05;
          wait ()
        end
      in
      wait ()
    done;
    let router =
      match (router_socket, router_port) with
      | None, None -> None
      | Some _, Some _ ->
          Format.eprintf
            "ipds fleet: --router-socket and --router-port are mutually \
             exclusive@.";
          exit 2
      | Some path, None ->
          Some (Serve.Router.start ~topology (`Unix path))
      | None, Some p -> Some (Serve.Router.start ~topology (`Tcp p))
    in
    List.iteri
      (fun i name -> Format.printf "ipds fleet: shard %d at %s@." i name)
      (Ipds_fleet.Topology.names topology);
    (match router with
    | Some r ->
        Format.printf "ipds fleet: router at %s@."
          (match (router_socket, Serve.Router.port r) with
          | Some path, _ -> path
          | None, Some p -> Printf.sprintf "127.0.0.1:%d" p
          | None, None -> "?")
    | None -> ());
    let stop_requested = Atomic.make false in
    let on_signal _ = Atomic.set stop_requested true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    let alive = Array.map (fun _ -> true) pids in
    while not (Atomic.get stop_requested) do
      (try ignore (Unix.select [] [] [] 0.2)
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      (* A dead shard is only degraded service — clients fail over along
         the ring — so warn and keep the fleet up. *)
      Array.iteri
        (fun i pid ->
          if alive.(i) && fst (Unix.waitpid [ Unix.WNOHANG ] pid) <> 0 then begin
            alive.(i) <- false;
            Format.eprintf
              "ipds fleet: warning: shard %d died; its keys re-route to ring \
               successors@."
              i
          end)
        pids
    done;
    Format.printf "ipds fleet: shutting down@.";
    Option.iter Serve.Router.stop router;
    Array.iteri
      (fun i pid ->
        if alive.(i) then begin
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
        end)
      pids
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Launch N verdict-server processes sharded by artifact key.  \
          Routing-aware clients (check-remote --shards) hash keys straight \
          to the owning shard; --router-socket adds a thin proxy for legacy \
          clients.")
    Term.(
      const run $ cache_term $ obs_term $ socket_arg $ port_arg $ shards_arg
      $ jobs_arg $ timeout_arg $ cache_slots_arg $ router_socket_arg
      $ router_port_arg $ share_artifacts_arg)

(* ---------- servers ---------- *)

let servers_cmd =
  let run () =
    List.iter
      (fun (w : W.t) ->
        Format.printf "@%-10s %-14s %s@." w.W.name
          (match w.W.vulnerability with
          | W.Buffer_overflow -> "overflow"
          | W.Format_string -> "format-string")
          w.W.description)
      W.all
  in
  Cmd.v
    (Cmd.info "servers" ~doc:"List the built-in server workloads (usable as @name).")
    Term.(const run $ const ())

let () =
  let doc = "Infeasible Path Detection System (MICRO 2006) toolchain" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "ipds" ~doc)
          [
            analyze_cmd;
            run_cmd;
            attack_cmd;
            perf_cmd;
            trace_cmd;
            compile_cmd;
            encode_cmd;
            inspect_cmd;
            serve_cmd;
            check_remote_cmd;
            fleet_cmd;
            servers_cmd;
          ]))
