(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6), plus bechamel microbenchmarks of the compile-side and
   runtime-side machinery.

     dune exec bench/main.exe            -- everything (default sizes)
     dune exec bench/main.exe -- fig7    -- detection rates (Figure 7)
     dune exec bench/main.exe -- fig8    -- table sizes (Figure 8)
     dune exec bench/main.exe -- fig9    -- normalized performance (Figure 9)
     dune exec bench/main.exe -- table1  -- simulated processor parameters
     dune exec bench/main.exe -- latency -- detection latency (paper §6)
     dune exec bench/main.exe -- compile-time
     dune exec bench/main.exe -- ablation
     dune exec bench/main.exe -- micro   -- bechamel microbenchmarks
     dune exec bench/main.exe -- serve-latency -- verdict-server round trips
     dune exec bench/main.exe -- serve-throughput -- event-loop vs threaded
     dune exec bench/main.exe -- precision -- Fig-7 lift from --precision on
     dune exec bench/main.exe -- attacks -- attack universes (mem, cond-flip,
                                            insn-skip) over the workloads, a
                                            generated population, and the DME
                                            baseline; writes BENCH_attacks.json
     dune exec bench/main.exe -- smoke   -- tiny campaign + invariant checks

   Flags (defaults preserve the historical sizes):

     --attacks N   attacks per server for the campaign experiments
     --seed S      base PRNG seed (default 2006)
     --jobs N      worker domains (default: recommended cores - 1, or
                   IPDS_JOBS; --jobs 1 is strictly sequential and
                   bit-identical to any other job count)
     --json FILE   write a machine-readable report of everything that
                   ran (rates, sizes, slowdown, latency, wall-clock per
                   phase, artifact-cache counters) — e.g.
                   --json BENCH_$(date +%F).json
     --cache-dir D two-tier artifact cache: load prebuilt .ipds objects
                   from D (populating it on misses) instead of
                   recompiling and re-analyzing; defaults to
                   IPDS_CACHE_DIR when set
     --no-cache    ignore IPDS_CACHE_DIR and run everything in memory
     --events F    stream structured JSONL events (manifest first line)
                   to F; defaults to IPDS_EVENTS when set
     --universes L comma-separated attack universes for the attacks
                   target (default mem,cond-flip,insn-skip)
     --attacks-out F  attack-universes report file (the "stable" section
                   is byte-identical across --jobs; throughput is under
                   "throughput_unstable")

   The --json report embeds the run manifest plus two metric sections:
   "metrics" (stable counters/gauges/histograms — byte-identical across
   --jobs values) and "runtime_metrics" (pool utilisation and span
   timers, which legitimately vary). *)

module H = Ipds_harness
module W = Ipds_workloads.Workloads
module Pool = Ipds_parallel.Pool
module J = H.Json

let section title = Printf.printf "\n=== %s ===\n%!" title

(* ---------- experiment phases; each prints its table and returns the
   same numbers as JSON ---------- *)

let attack_summary_json (s : H.Attack_experiment.summary) =
  J.Obj
    [
      ( "rows",
        J.List
          (List.map
             (fun (r : H.Attack_experiment.row) ->
               J.Obj
                 [
                   ("workload", J.String r.workload);
                   ("attacks", J.Int r.attacks);
                   ("cf_changed", J.Int r.cf_changed);
                   ("detected", J.Int r.detected);
                 ])
             s.H.Attack_experiment.rows) );
      ("avg_cf_changed", J.Float s.H.Attack_experiment.avg_cf_changed);
      ("avg_detected", J.Float s.H.Attack_experiment.avg_detected);
      ("detected_given_cf", J.Float s.H.Attack_experiment.detected_given_cf);
    ]

let fig7 ~attacks ~seed ?pool () =
  section (Printf.sprintf "Figure 7: detection rate (%d attacks/server)" attacks);
  (* three independent campaigns: the first is the reported table, the
     spread across seeds quantifies sampling noise *)
  let seeds = if seed = 2006 then [ 2006; 7; 99 ] else [ seed; seed + 1; seed + 2 ] in
  let summaries =
    List.map (fun seed -> H.Attack_experiment.run_all ~attacks ~seed ?pool ()) seeds
  in
  let s = List.hd summaries in
  print_endline (H.Attack_experiment.render s);
  let series f = List.map f summaries in
  Printf.printf
    "across seeds: cf-changed %s, detected %s, detected|cf %s\n"
    (H.Stats.mean_sd (series (fun s -> s.H.Attack_experiment.avg_cf_changed)))
    (H.Stats.mean_sd (series (fun s -> s.H.Attack_experiment.avg_detected)))
    (H.Stats.mean_sd (series (fun s -> s.H.Attack_experiment.detected_given_cf)));
  print_endline
    "paper: 49.4% of tamperings change control flow; 29.3% detected overall; \
     59.3% of control-flow-changing detected";
  J.Obj
    (List.map2
       (fun seed s -> (Printf.sprintf "seed_%d" seed, attack_summary_json s))
       seeds summaries)

let fig8 () =
  section "Figure 8: average table sizes (bits)";
  let rows = H.Size_census.run_all () in
  print_endline (H.Size_census.render rows);
  print_endline "paper averages: BSV 34, BCV 17, BAT 393";
  J.List
    (List.map
       (fun (r : H.Size_census.row) ->
         J.Obj
           [
             ("workload", J.String r.workload);
             ("functions", J.Int r.functions);
             ("avg_bsv_bits", J.Float r.avg_bsv_bits);
             ("avg_bcv_bits", J.Float r.avg_bcv_bits);
             ("avg_bat_bits", J.Float r.avg_bat_bits);
           ])
       rows)

let perf_rows_json rows =
  J.List
    (List.map
       (fun (r : H.Perf_experiment.row) ->
         J.Obj
           [
             ("workload", J.String r.workload);
             ("instructions", J.Int r.instructions);
             ("base_cycles", J.Float r.base_cycles);
             ("ipds_cycles", J.Float r.ipds_cycles);
             ("normalized", J.Float r.normalized);
             ("avg_detection_latency", J.Float r.avg_detection_latency);
             ("spills", J.Int r.spills);
           ])
       rows)

let fig9 ?pool () =
  section "Figure 9: performance normalized to no-IPDS baseline";
  let rows = H.Perf_experiment.run_all ?pool () in
  print_endline (H.Perf_experiment.render rows);
  print_endline "paper: average degradation 0.79%";
  perf_rows_json rows

let table1 () =
  section "Table 1: simulated processor parameters";
  Format.printf "%a@." Ipds_pipeline.Config.pp Ipds_pipeline.Config.default;
  J.Null

let latency ?pool () =
  section "Detection latency (cycles from branch commit to IPDS verdict)";
  let rows = H.Perf_experiment.run_all ?pool () in
  List.iter
    (fun (r : H.Perf_experiment.row) ->
      Printf.printf "%-10s %6.1f cycles\n" r.workload r.avg_detection_latency)
    rows;
  let avg =
    H.Stats.mean
      (List.map (fun (r : H.Perf_experiment.row) -> r.avg_detection_latency) rows)
  in
  (match avg with
  | Some avg -> Printf.printf "AVERAGE    %6.1f cycles   (paper: 11.7)\n" avg
  | None -> print_endline "AVERAGE    n/a (no workloads ran)");
  J.Obj
    [
      ( "avg_detection_latency",
        match avg with Some avg -> J.Float avg | None -> J.Null );
      ( "per_workload",
        J.Obj
          (List.map
             (fun (r : H.Perf_experiment.row) ->
               (r.workload, J.Float r.avg_detection_latency))
             rows) );
    ]

let compile_time () =
  section "Compile time per benchmark (paper: up to a few seconds)";
  let rows, passes = H.Compile_time.run_all_with_passes () in
  print_endline (H.Compile_time.render rows);
  print_endline "Per-pass breakdown (pipeline order):";
  print_endline (H.Compile_time.render_passes passes);
  J.Obj
    [
      ( "per_workload",
        J.List
          (List.map
             (fun (r : H.Compile_time.row) ->
               J.Obj
                 [
                   ("workload", J.String r.workload);
                   ("seconds", J.Float r.seconds);
                   ("hash_attempts", J.Int r.hash_attempts);
                 ])
             rows) );
      (* pass names and unit counts are stable across --jobs; wall
         seconds are scheduling-dependent, hence the explicit suffix. *)
      ( "passes",
        J.List
          (List.map
             (fun (p : H.Compile_time.pass_row) ->
               J.Obj
                 [
                   ("name", J.String p.pass);
                   ("scope", J.String p.scope);
                   ("units", J.Int p.units);
                   ("wall_seconds_unstable", J.Float p.seconds);
                 ])
             passes) );
    ]

let ablation ~attacks ?pool () =
  section (Printf.sprintf "Ablation (%d attacks/server)" attacks);
  let rows = H.Ablation.run_all ~attacks ?pool () in
  print_endline (H.Ablation.render rows);
  J.List
    (List.map
       (fun (r : H.Ablation.row) ->
         J.Obj
           [
             ("variant", J.String r.label);
             ("avg_detected", J.Float r.avg_detected);
             ("detected_given_cf", J.Float r.detected_given_cf);
             ("checked_branches", J.Int r.checked_branches);
             ("avg_bat_bits", J.Float r.avg_bat_bits);
           ])
       rows)

let baseline ~attacks ?pool () =
  section
    (Printf.sprintf
       "Baseline comparison: 3-gram syscall-trace detector vs IPDS (%d \
        attacks/server)"
       attacks);
  let rows = H.Baseline_experiment.run_all ~attacks ?pool () in
  print_endline (H.Baseline_experiment.render rows);
  J.List
    (List.map
       (fun (r : H.Baseline_experiment.row) ->
         J.Obj
           [
             ("workload", J.String r.workload);
             ("ngram_fp", J.Float r.ngram_fp);
             ("ngram_detected", J.Int r.ngram_detected);
             ("ipds_detected", J.Int r.ipds_detected);
             ("cf_changed", J.Int r.cf_changed);
             ("attacks", J.Int r.attacks);
           ])
       rows)

let models ~attacks ?pool () =
  section
    (Printf.sprintf "Attack models (paper §3): overflow vs arbitrary write (%d \
                     attacks/server)" attacks);
  let rows = H.Model_experiment.run_all ~attacks ?pool () in
  print_endline (H.Model_experiment.render rows);
  J.List
    (List.map
       (fun (r : H.Model_experiment.row) ->
         J.Obj
           [
             ("workload", J.String r.workload);
             ("overflow_cf", J.Float r.overflow_cf);
             ("overflow_detected", J.Float r.overflow_detected);
             ("arbitrary_cf", J.Float r.arbitrary_cf);
             ("arbitrary_detected", J.Float r.arbitrary_detected);
           ])
       rows)

let ctx () =
  section "Context switches: save/restore cost vs switch period (sshd)";
  let rows = H.Ctx_experiment.run (W.find "sshd") in
  print_endline (H.Ctx_experiment.render rows);
  J.List
    (List.map
       (fun (r : H.Ctx_experiment.row) ->
         J.Obj
           [
             ("period_cycles", J.Int r.period_cycles);
             ("switches", J.Int r.switches);
             ("overhead", J.Float r.overhead);
           ])
       rows)

(* ---------- bechamel microbenchmarks ---------- *)

let micro () =
  section "Microbenchmarks (bechamel, ns/run)";
  let open Bechamel in
  let telnetd = W.find "telnetd" in
  let program = W.program telnetd in
  let system = Ipds_core.System.cached_build program in
  let estimates = ref [] in
  let tests =
    [
      Test.make ~name:"minic-compile:telnetd"
        (Staged.stage (fun () -> ignore (Ipds_minic.Minic.compile telnetd.W.source)));
      Test.make ~name:"analyze:telnetd"
        (Staged.stage (fun () ->
             ignore (Ipds_correlation.Analysis.analyze_program program)));
      Test.make ~name:"system-build:telnetd"
        (Staged.stage (fun () -> ignore (Ipds_core.System.build program)));
      Test.make ~name:"run+check:telnetd"
        (Staged.stage (fun () ->
             let checker = Ipds_core.System.new_checker system in
             ignore
               (Ipds_machine.Interp.run program
                  {
                    Ipds_machine.Interp.default_config with
                    inputs = Ipds_machine.Input_script.random ~seed:1 ();
                    checker = Some checker;
                    record_trace = false;
                  })));
      (let layout = system.Ipds_core.System.layout in
       let f = Ipds_mir.Program.find_func_exn program "main" in
       let pcs = Ipds_mir.Layout.branch_pcs layout f in
       Test.make ~name:"hash-search:telnetd-main"
         (Staged.stage (fun () -> ignore (Ipds_core.Hash.find pcs))));
    ]
  in
  List.iter
    (fun t ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ())
          Toolkit.Instance.[ monotonic_clock ]
          t
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) ->
              estimates := (name, est) :: !estimates;
              Printf.printf "%-28s %12.0f ns/run\n" name est
          | Some [] | None -> Printf.printf "%-28s (no estimate)\n" name)
        ols)
    tests;
  J.Obj (List.rev_map (fun (name, est) -> (name, J.Float est)) !estimates)

(* ---------- serve-latency: verdict-server round trips ---------- *)

let rec chunks n = function
  | [] -> []
  | xs ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: tl -> take (k - 1) (x :: acc) tl
      in
      let batch, rest = take n [] xs in
      batch :: chunks n rest

let percentile sorted p =
  match sorted with
  | [||] -> 0
  | a -> a.(min (Array.length a - 1) (p * Array.length a / 100))

let serve_latency ~seed () =
  section "Verdict-server latency (in-process server, Unix socket)";
  let module Serve = Ipds_serve in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ipds-bench-%d.sock" (Unix.getpid ()))
  in
  let w = W.find "telnetd" in
  let system = W.system w in
  let program = W.program w in
  (* Record the event stream once; every trace then replays the same
     batches, so the measurement is pure protocol + checking cost. *)
  let events = ref [] in
  ignore
    (Ipds_machine.Interp.run program
       {
         Ipds_machine.Interp.default_config with
         inputs = Ipds_machine.Input_script.random ~seed ();
         record_trace = false;
         sink =
           Some
             (fun (e : Ipds_machine.Event.t) ->
               match e.Ipds_machine.Event.kind with
               | Ipds_machine.Event.Call _ | Ipds_machine.Event.Ret
               | Ipds_machine.Event.Branch _ ->
                   events := e :: !events
               | _ -> ());
       });
  let batch_size = 256 in
  let batches = chunks batch_size (List.rev !events) in
  let n_events = List.length !events in
  let traces = 20 in
  let fail msg =
    Printf.eprintf "serve-latency: %s\n%!" msg;
    exit 1
  in
  let ok = function
    | Ok v -> v
    | Error (e : Serve.Protocol.err) -> fail e.Serve.Protocol.detail
  in
  let config = { Serve.Server.default_config with jobs = 2 } in
  let micros =
    Serve.Server.with_server ~config (`Unix sock) (fun _server ->
        let client = Serve.Client.connect (`Unix sock) in
        Fun.protect
          ~finally:(fun () -> Serve.Client.close client)
          (fun () ->
            ignore
              (ok
                 (Serve.Client.load_image client ~name:w.W.name
                    (Ipds_artifact.Artifact.to_bytes system)));
            let micros = ref [] in
            for _ = 1 to traces do
              ok (Serve.Client.begin_trace client);
              List.iter
                (fun batch ->
                  let t0 = Unix.gettimeofday () in
                  ignore (ok (Serve.Client.send_events client batch));
                  micros :=
                    int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)
                    :: !micros)
                batches;
              ignore (ok (Serve.Client.end_trace client))
            done;
            !micros))
  in
  let sorted = Array.of_list (List.sort compare micros) in
  let n = Array.length sorted in
  let sum = Array.fold_left ( + ) 0 sorted in
  let mean = if n = 0 then 0. else float_of_int sum /. float_of_int n in
  let p50 = percentile sorted 50
  and p95 = percentile sorted 95
  and p99 = percentile sorted 99 in
  let max_m = if n = 0 then 0 else sorted.(n - 1) in
  Printf.printf
    "%s: %d traces x %d events (%d batches of %d)\n\
     round-trip per batch: mean %.0f us, p50 %d us, p95 %d us, p99 %d us, \
     max %d us\n"
    w.W.name traces n_events (List.length batches) batch_size mean p50 p95 p99
    max_m;
  J.Obj
    [
      ("workload", J.String w.W.name);
      ("traces", J.Int traces);
      ("events_per_trace", J.Int n_events);
      ("batch_size", J.Int batch_size);
      ("batches_per_trace", J.Int (List.length batches));
      ("round_trips", J.Int n);
      ("mean_micros", J.Float mean);
      ("p50_micros", J.Int p50);
      ("p95_micros", J.Int p95);
      ("p99_micros", J.Int p99);
      ("max_micros", J.Int max_m);
    ]

(* ---------- serve-throughput: event loop vs thread-per-session ---------- *)

(* The acceptance experiment for the event-loop rework: both server
   implementations (identical wire behaviour) are driven by the same
   lockstep load generator at 1/8/64/512 concurrent clients, each
   connection pumping one pre-encoded balanced batch at a time.  The
   batch is the workload's full recorded run ([Call main] ... [Ret]),
   tiled to >= 256 events: it enters and leaves a fresh activation, so
   the checker is in its base state after every batch and the replay
   is alarm-free forever (verified below before any socket is opened).
   The server runs in a subprocess (the hidden [serve-child] argv mode
   below) so the parent's 512 client sockets and the server's 512
   session sockets never share one process's fd table — [Unix.select]
   cannot represent fds >= 1024.

   verdicts_per_sec counts branch verdicts acknowledged inside the
   measurement window; the latency percentiles are per-batch lockstep
   round trips. *)

let permille sorted m =
  match sorted with
  | [||] -> 0
  | a -> a.(min (Array.length a - 1) (m * Array.length a / 1000))

type serve_stat = {
  s_served : int;  (* clients that reached the pumping state *)
  s_batches : int;  (* batches acknowledged inside the window *)
  s_vps : float;  (* branch verdicts per second *)
  s_mean : float;  (* per-batch round trip, microseconds *)
  s_p50 : int;
  s_p99 : int;
  s_p999 : int;
}

type serve_conn_state = Conn_loading | Conn_starting | Conn_pumping

type serve_conn = {
  c_fd : Unix.file_descr;
  mutable c_state : serve_conn_state;
  mutable c_inbuf : Bytes.t;
  mutable c_inlen : int;
  mutable c_out : Bytes.t;  (* the frame being written, [] when idle *)
  mutable c_outpos : int;
  mutable c_sent : float;  (* when the in-flight batch was queued *)
  mutable c_acked : int;
  mutable c_rtts : int list;  (* microseconds, window only *)
  mutable c_ready : bool;
}

let serve_throughput ~seed ~out () =
  section "Serving throughput: event-loop reactor vs thread-per-session";
  let module P = Ipds_serve.Protocol in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "serve-throughput: %s\n%!" m;
        exit 1)
      fmt
  in
  let w = W.find "telnetd" in
  let system = W.system w in
  let events = ref [] in
  ignore
    (Ipds_machine.Interp.run (W.program w)
       {
         Ipds_machine.Interp.default_config with
         max_steps = 60_000;
         inputs = Ipds_machine.Input_script.random ~seed ();
         record_trace = false;
         sink =
           Some
             (fun (e : Ipds_machine.Event.t) ->
               match e.Ipds_machine.Event.kind with
               | Ipds_machine.Event.Call _ | Ipds_machine.Event.Ret
               | Ipds_machine.Event.Branch _ ->
                   events := e :: !events
               | _ -> ());
       });
  let run = List.rev !events in
  let run_len = List.length run in
  if run_len = 0 then fail "%s recorded an empty event stream" w.W.name;
  (* verify that the run is balanced and alarm-free under repetition:
     replies then stay identical and empty, and the server's alarm
     list cannot grow over the window *)
  let checker = Ipds_core.System.new_checker system in
  let base_depth = Ipds_core.Checker.depth checker in
  let run_branches = ref 0 in
  for rep = 1 to 50 do
    List.iter
      (fun (e : Ipds_machine.Event.t) ->
        match e.Ipds_machine.Event.kind with
        | Ipds_machine.Event.Call { callee } ->
            if Ipds_core.System.mem system callee then
              ignore (Ipds_core.Checker.on_call checker callee)
        | Ipds_machine.Event.Ret ->
            ignore (Ipds_core.Checker.on_return checker)
        | Ipds_machine.Event.Branch { taken; _ } ->
            if rep = 1 then incr run_branches;
            let v =
              Ipds_core.Checker.on_branch checker
                ~pc:e.Ipds_machine.Event.pc ~taken
            in
            if Ipds_core.Checker.verdict_violation v then
              fail "%s: replay hit a checker protocol violation" w.W.name
        | _ -> ())
      run;
    if Ipds_core.Checker.depth checker <> base_depth then
      fail "%s: recorded run is not call-balanced" w.W.name
  done;
  if Ipds_core.Checker.alarm_count checker > 0 then
    fail "%s: repeated replay raised %d alarms" w.W.name
      (Ipds_core.Checker.alarm_count checker);
  let copies = max 1 ((1024 + run_len - 1) / run_len) in
  let batch = List.concat (List.init copies (fun _ -> run)) in
  let batch_events = List.length batch in
  let branch_reps = copies * !run_branches in
  let key = "bench-serve" in
  let store_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ipds-bench-serve-%d" (Unix.getpid ()))
  in
  let store = Ipds_artifact.Store.create ~dir:store_dir in
  Ipds_artifact.Store.publish_system store key system;
  let load_frame = P.encode_frame (P.Load_key key) in
  let begin_frame = P.encode_frame P.Begin_trace in
  let batch_frame = P.encode_frame (P.Branch_events batch) in
  (* the expected ack: an empty [Verdicts] frame.  The driver matches
     replies against its tag and payload length instead of decoding
     each one — the load generator must not be the bottleneck — and
     decodes only on mismatch to report what actually arrived. *)
  let ack_tag, ack_payload_len =
    match
      P.scan_at
        (P.encode_frame (P.Verdicts []))
        ~pos:0
        ~len:(Bytes.length (P.encode_frame (P.Verdicts [])))
    with
    | P.Scan_frame { tag; payload_len; _ } -> (tag, payload_len)
    | _ -> fail "could not scan the canonical empty-verdicts frame"
  in
  let spawn_server ~impl ~sock ~jobs =
    let stdin_r, stdin_w = Unix.pipe () in
    let stdout_r, stdout_w = Unix.pipe () in
    let pid =
      Unix.create_process Sys.executable_name
        [|
          Sys.executable_name; "serve-child"; "--serve-impl"; impl;
          "--serve-socket"; sock; "--serve-store"; store_dir; "--serve-jobs";
          string_of_int jobs;
        |]
        stdin_r stdout_w Unix.stderr
    in
    Unix.close stdin_r;
    Unix.close stdout_w;
    let buf = Bytes.create 64 in
    let deadline = Unix.gettimeofday () +. 20.0 in
    let rec await acc =
      if Unix.gettimeofday () > deadline then
        fail "%s server child: no READY within 20s" impl;
      match Unix.select [ stdout_r ] [] [] 0.5 with
      | [], _, _ -> await acc
      | _ -> (
          match Unix.read stdout_r buf 0 (Bytes.length buf) with
          | 0 -> fail "%s server child exited before READY" impl
          | n ->
              let acc = acc ^ Bytes.sub_string buf 0 n in
              if String.contains acc '\n' then acc else await acc)
    in
    let line = await "" in
    if not (String.length line >= 5 && String.equal (String.sub line 0 5) "READY")
    then fail "%s server child said %S, not READY" impl line;
    Unix.close stdout_r;
    (pid, stdin_w)
  in
  let stop_server (pid, stdin_w) =
    (try Unix.close stdin_w with Unix.Unix_error _ -> ());
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec wait () =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
          if Unix.gettimeofday () > deadline then begin
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid)
          end
          else begin
            ignore (Unix.select [] [] [] 0.05);
            wait ()
          end
      | _ -> ()
    in
    wait ()
  in
  let warmup = 0.3 and window = 1.2 in
  let pump_level ~impl ~clients =
    let sock =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ipds-bench-%d-%s-%d.sock" (Unix.getpid ()) impl
           clients)
    in
    if Sys.file_exists sock then Sys.remove sock;
    (* the reactor multiplexes any client count on one domain; the
       thread-per-session baseline needs a worker per concurrent
       session, capped well under the OCaml domain limit *)
    let jobs = if String.equal impl "reactor" then 1 else min clients 64 in
    let expect_ready = if String.equal impl "reactor" then clients else min clients jobs in
    let child = spawn_server ~impl ~sock ~jobs in
    let conns =
      Array.init clients (fun _ ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX sock);
          Unix.set_nonblock fd;
          {
            c_fd = fd;
            c_state = Conn_loading;
            c_inbuf = Bytes.create 65536;
            c_inlen = 0;
            c_out = Bytes.empty;
            c_outpos = 0;
            c_sent = 0.;
            c_acked = 0;
            c_rtts = [];
            c_ready = false;
          })
    in
    let by_fd = Hashtbl.create (2 * clients) in
    Array.iter (fun c -> Hashtbl.replace by_fd c.c_fd c) conns;
    let flush_out c =
      let len = Bytes.length c.c_out - c.c_outpos in
      if len > 0 then
        match Unix.write c.c_fd c.c_out c.c_outpos len with
        | n -> c.c_outpos <- c.c_outpos + n
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
    in
    let queue c frame =
      (* lockstep: at most one frame in flight per connection *)
      c.c_out <- frame;
      c.c_outpos <- 0;
      flush_out c
    in
    let t0 = ref infinity and t1 = ref infinity in
    let handle_read c =
      (if Bytes.length c.c_inbuf - c.c_inlen < 4096 then begin
         let nb = Bytes.create (2 * Bytes.length c.c_inbuf) in
         Bytes.blit c.c_inbuf 0 nb 0 c.c_inlen;
         c.c_inbuf <- nb
       end);
      match
        Unix.read c.c_fd c.c_inbuf c.c_inlen (Bytes.length c.c_inbuf - c.c_inlen)
      with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | 0 -> fail "%s/%d clients: server closed a bench connection" impl clients
      | n ->
          c.c_inlen <- c.c_inlen + n;
          let pos = ref 0 in
          let scanning = ref true in
          while !scanning do
            match P.scan_at c.c_inbuf ~pos:!pos ~len:(c.c_inlen - !pos) with
            | P.Scan_need _ -> scanning := false
            | P.Scan_fail e -> fail "reply scan: %s" e.P.detail
            | P.Scan_frame { tag; payload_pos; payload_len; next } ->
                (if
                   c.c_state = Conn_pumping && tag = ack_tag
                   && payload_len = ack_payload_len
                 then begin
                   let now = Unix.gettimeofday () in
                   if now >= !t0 && now <= !t1 then begin
                     c.c_acked <- c.c_acked + 1;
                     c.c_rtts <-
                       int_of_float ((now -. c.c_sent) *. 1e6) :: c.c_rtts
                   end;
                   c.c_sent <- now;
                   queue c batch_frame
                 end
                 else
                   match
                     P.decode_span tag c.c_inbuf ~pos:payload_pos
                       ~len:payload_len
                   with
                   | Error e -> fail "reply decode: %s" e.P.detail
                   | Ok (P.Error e) ->
                       fail "server error %s: %s"
                         (P.error_code_to_string e.P.code)
                         e.P.detail
                   | Ok (P.Loaded _) when c.c_state = Conn_loading ->
                       c.c_state <- Conn_starting;
                       queue c begin_frame
                   | Ok P.Trace_started when c.c_state = Conn_starting ->
                       c.c_state <- Conn_pumping;
                       c.c_ready <- true;
                       c.c_sent <- Unix.gettimeofday ();
                       queue c batch_frame
                   | Ok (P.Verdicts vs) when c.c_state = Conn_pumping ->
                       fail "balanced batch raised %d alarms" (List.length vs)
                   | Ok _ ->
                       fail "unexpected reply frame for the session state");
                pos := next
          done;
          if !pos > 0 then begin
            Bytes.blit c.c_inbuf !pos c.c_inbuf 0 (c.c_inlen - !pos);
            c.c_inlen <- c.c_inlen - !pos
          end
    in
    Array.iter (fun c -> queue c load_frame) conns;
    let setup_deadline = Unix.gettimeofday () +. 10.0 in
    let running = ref true in
    while !running do
      let now = Unix.gettimeofday () in
      (if !t0 = infinity then
         let ready =
           Array.fold_left (fun a c -> if c.c_ready then a + 1 else a) 0 conns
         in
         if ready >= expect_ready then begin
           t0 := now +. warmup;
           t1 := !t0 +. window
         end
         else if now > setup_deadline then
           if ready > 0 then begin
             t0 := now +. warmup;
             t1 := !t0 +. window
           end
           else fail "%s/%d clients: no session reached pumping" impl clients);
      if now > !t1 then running := false
      else begin
        let rds = Array.fold_left (fun acc c -> c.c_fd :: acc) [] conns in
        let wrs =
          Array.fold_left
            (fun acc c ->
              if Bytes.length c.c_out - c.c_outpos > 0 then c.c_fd :: acc
              else acc)
            [] conns
        in
        match Unix.select rds wrs [] 0.2 with
        | rd, wr, _ ->
            List.iter (fun fd -> flush_out (Hashtbl.find by_fd fd)) wr;
            List.iter (fun fd -> handle_read (Hashtbl.find by_fd fd)) rd
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      end
    done;
    Array.iter
      (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
      conns;
    stop_server child;
    if Sys.file_exists sock then Sys.remove sock;
    let served =
      Array.fold_left (fun a c -> if c.c_ready then a + 1 else a) 0 conns
    in
    let batches = Array.fold_left (fun a c -> a + c.c_acked) 0 conns in
    let rtts =
      Array.fold_left (fun acc c -> List.rev_append c.c_rtts acc) [] conns
    in
    let sorted = Array.of_list (List.sort compare rtts) in
    let n = Array.length sorted in
    let mean =
      if n = 0 then 0.
      else float_of_int (Array.fold_left ( + ) 0 sorted) /. float_of_int n
    in
    {
      s_served = served;
      s_batches = batches;
      s_vps = float_of_int (batches * branch_reps) /. window;
      s_mean = mean;
      s_p50 = percentile sorted 50;
      s_p99 = percentile sorted 99;
      s_p999 = permille sorted 999;
    }
  in
  Printf.printf
    "%s: %d-event balanced batches (%d runs of %d events, %d branches), \
     %.1fs window per level\n\
     %8s  %12s %10s %23s  %12s %10s %23s  %7s\n"
    w.W.name batch_events copies run_len branch_reps window "clients"
    "event-loop" "verdict/s" "p50/p99/p999 us" "threaded" "verdict/s"
    "p50/p99/p999 us" "speedup";
  let levels = [ 1; 8; 64; 512 ] in
  let rows =
    List.map
      (fun clients ->
        let el = pump_level ~impl:"reactor" ~clients in
        let th = pump_level ~impl:"threaded" ~clients in
        let speedup = if th.s_vps > 0. then el.s_vps /. th.s_vps else 0. in
        Printf.printf
          "%8d  %12s %10.0f %7d/%7d/%7d  %12s %10.0f %7d/%7d/%7d  %6.1fx\n%!"
          clients "" el.s_vps el.s_p50 el.s_p99 el.s_p999 "" th.s_vps th.s_p50
          th.s_p99 th.s_p999 speedup;
        (clients, el, th, speedup))
      levels
  in
  let speedup_at_64 =
    match List.find_opt (fun (c, _, _, _) -> c = 64) rows with
    | Some (_, _, _, s) -> s
    | None -> 0.
  in
  Printf.printf "event-loop/threaded speedup at 64 clients: %.1fx\n"
    speedup_at_64;
  ignore
    (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote store_dir)));
  let impl_json (s : serve_stat) =
    J.Obj
      [
        ("verdicts_per_sec", J.Float s.s_vps);
        ("batches_acked", J.Int s.s_batches);
        ("served_clients", J.Int s.s_served);
        ( "latency_micros",
          J.Obj
            [
              ("mean", J.Float s.s_mean);
              ("p50", J.Int s.s_p50);
              ("p99", J.Int s.s_p99);
              ("p999", J.Int s.s_p999);
            ] );
      ]
  in
  let data =
    J.Obj
      [
        ("workload", J.String w.W.name);
        ("batch_events", J.Int batch_events);
        ("branches_per_batch", J.Int branch_reps);
        ("window_seconds", J.Float window);
        ( "levels",
          J.List
            (List.map
               (fun (clients, el, th, speedup) ->
                 J.Obj
                   [
                     ("clients", J.Int clients);
                     ("event_loop", impl_json el);
                     ("threaded", impl_json th);
                     ("speedup", J.Float speedup);
                   ])
               rows) );
        ("speedup_at_64", J.Float speedup_at_64);
      ]
  in
  (match out with
  | None -> ()
  | Some path ->
      J.write_file path data;
      Printf.printf "wrote %s\n" path);
  data

(* ---------- checker-throughput: flat image vs reference checker ---------- *)

(* A workload's call/return/branch stream, recorded once into flat arrays
   so replay cost is pure checker cost (no interp, no event records). *)
type recorded = {
  r_names : string array;  (* call operands index into this *)
  r_ops : int array;  (* 0 = call, 1 = ret, 2 = branch taken, 3 = not taken *)
  r_args : int array;  (* call: name index; branch: pc; ret: unused *)
  r_events : int;
  r_branches : int;
}

let record_events ~seed ~system w =
  let program = W.program w in
  let cap = ref 4096 in
  let ops = ref (Array.make !cap 0) and args = ref (Array.make !cap 0) in
  let n = ref 0 in
  let names = ref [] and n_names = ref 0 in
  let name_idx = Hashtbl.create 16 in
  let intern s =
    match Hashtbl.find_opt name_idx s with
    | Some i -> i
    | None ->
        let i = !n_names in
        Hashtbl.add name_idx s i;
        names := s :: !names;
        incr n_names;
        i
  in
  let push op arg =
    if !n = !cap then begin
      cap := !cap * 2;
      let grow a =
        let b = Array.make !cap 0 in
        Array.blit a 0 b 0 !n;
        b
      in
      ops := grow !ops;
      args := grow !args
    end;
    !ops.(!n) <- op;
    !args.(!n) <- arg;
    incr n
  in
  let branches = ref 0 in
  ignore
    (Ipds_machine.Interp.run program
       {
         Ipds_machine.Interp.default_config with
         inputs = Ipds_machine.Input_script.random ~seed ();
         record_trace = false;
         sink =
           Some
             (fun (e : Ipds_machine.Event.t) ->
               match e.Ipds_machine.Event.kind with
               | Ipds_machine.Event.Call { callee } ->
                   (* extern calls have no tables and no matching Ret;
                      the inline checker never sees them either *)
                   if Ipds_core.System.mem system callee then
                     push 0 (intern callee)
               | Ipds_machine.Event.Ret -> push 1 0
               | Ipds_machine.Event.Branch { taken; _ } ->
                   incr branches;
                   push (if taken then 2 else 3) e.Ipds_machine.Event.pc
               | _ -> ());
       });
  {
    r_names = Array.of_list (List.rev !names);
    r_ops = Array.sub !ops 0 !n;
    r_args = Array.sub !args 0 !n;
    r_events = !n;
    r_branches = !branches;
  }

(* Each timed repetition replays the recorded stream [rounds] times
   through one checker, so creation cost amortizes away and the rates
   are steady-state (including minor-GC pressure, which is the point). *)
let replay_flat system r ~rounds =
  let c = Ipds_core.System.new_checker system in
  let ops = r.r_ops and args = r.r_args in
  (* resolve name indices to image handles once; the hot loop then uses
     [on_call_img], the handle-passing entry the flat design adds *)
  let imgs = Array.map (Ipds_core.System.image system) r.r_names in
  let n = r.r_events in
  let acc = ref 0 in
  for _ = 1 to rounds do
    for i = 0 to n - 1 do
      match Array.unsafe_get ops i with
      | 0 ->
          ignore
            (Ipds_core.Checker.on_call_img c
               (Array.unsafe_get imgs (Array.unsafe_get args i)))
      | 1 -> ignore (Ipds_core.Checker.on_return c)
      | op ->
          acc :=
            !acc
            lor Ipds_core.Checker.on_branch c ~pc:(Array.unsafe_get args i)
                  ~taken:(op = 2)
    done
  done;
  Ipds_core.Checker.flush c;
  Sys.opaque_identity !acc

let replay_reference system r ~rounds =
  let c = Ipds_core.System.new_ref_checker system in
  let ops = r.r_ops and args = r.r_args and names = r.r_names in
  let n = r.r_events in
  let acc = ref 0 in
  for _ = 1 to rounds do
    for i = 0 to n - 1 do
      match Array.unsafe_get ops i with
      | 0 ->
          ignore
            (Ipds_core.Checker_ref.on_call c
               (Array.unsafe_get names (Array.unsafe_get args i)))
      | 1 ->
          if Ipds_core.Checker_ref.depth c > 0 then
            Ipds_core.Checker_ref.on_return c
      | op ->
          let i' =
            Ipds_core.Checker_ref.on_branch c
              ~pc:(Array.unsafe_get args i) ~taken:(op = 2)
          in
          acc := !acc + i'.Ipds_core.Checker_ref.bat_nodes
    done
  done;
  Sys.opaque_identity !acc

type rate_stats = { mean : float; p50 : float; p99 : float }

let rate_stats ~reps ~branches f =
  ignore (f ());  (* warmup: grows the frame arena, faults in the tables *)
  let rates =
    Array.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        let dt = Unix.gettimeofday () -. t0 in
        float_of_int branches /. (if dt <= 0. then 1e-9 else dt))
  in
  let sorted = Array.copy rates in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pct p = sorted.(min (n - 1) (p * n / 100)) in
  {
    mean = Array.fold_left ( +. ) 0. rates /. float_of_int n;
    p50 = pct 50;
    p99 = pct 99;
  }

(* A (function, checked branch pc, direction) triple that keeps
   verifying ok when re-committed in one frame — the steady state the
   allocation probe and the branch-path microbench both need. *)
let steady_candidate system program =
  let layout = system.Ipds_core.System.layout in
  (* every (function, checked pc, direction) that keeps verifying ok
     when re-committed; three commits skip any BAT self-update
     transient *)
  let all =
    List.concat_map
      (fun (fname, _) ->
        let f = Ipds_mir.Program.find_func_exn program fname in
        let img = Ipds_core.System.image system fname in
        List.concat_map
          (fun pc ->
            if Ipds_core.Image.checked img (Ipds_core.Image.slot_of_pc img pc)
            then
              List.filter_map
                (fun taken ->
                  let c = Ipds_core.System.new_checker system in
                  ignore (Ipds_core.Checker.on_call c fname);
                  let ok v =
                    Ipds_core.Checker.verdict_checked v
                    && Ipds_core.Checker.verdict_ok v
                  in
                  let v1 = Ipds_core.Checker.on_branch c ~pc ~taken in
                  if
                    ok v1
                    && ok (Ipds_core.Checker.on_branch c ~pc ~taken)
                    && ok (Ipds_core.Checker.on_branch c ~pc ~taken)
                  then
                    Some
                      (fname, pc, taken, Ipds_core.Checker.verdict_bat_nodes v1)
                  else None)
                [ true; false ]
            else [])
          (Ipds_mir.Layout.branch_pcs layout f))
      system.Ipds_core.System.funcs
  in
  (* prefer the lightest update row — across the ten workloads the
     steady candidates carry 1-5 BAT nodes and a single node is by far
     the most common shape, so that is what the microbench should time *)
  match
    List.sort (fun (_, _, _, a) (_, _, _, b) -> compare a b) all
  with
  | c :: _ -> c
  | [] -> failwith "checker-throughput: no steadily-checked branch"

(* Search every workload for the microbench branch, taking the lightest
   steady update row found anywhere (no workload has an empty-row steady
   candidate — every checked branch is also a correlation source). *)
let microbench_candidate () =
  let cands =
    List.filter_map
      (fun w ->
        match steady_candidate (W.system w) (W.program w) with
        | c -> Some (w, c)
        | exception Failure _ -> None)
      W.all
  in
  match
    List.sort
      (fun (_, (_, _, _, a)) (_, (_, _, _, b)) -> compare a b)
      cands
  with
  | wc :: _ -> wc
  | [] -> failwith "checker-throughput: no steadily-checked branch"

(* Steady-state allocation probe: a warm call/branch/return cycle through
   a checked branch must not touch the minor heap at all. *)
let zero_alloc_probe () =
  let w, (fname, pc, taken, _) = microbench_candidate () in
  let system = W.system w in
  let c = Ipds_core.System.new_checker system in
  for _ = 1 to 1_000 do
    ignore (Ipds_core.Checker.on_call c fname);
    ignore (Ipds_core.Checker.on_branch c ~pc ~taken);
    ignore (Ipds_core.Checker.on_return c)
  done;
  let iters = 200_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    ignore (Ipds_core.Checker.on_call c fname);
    ignore (Ipds_core.Checker.on_branch c ~pc ~taken);
    ignore (Ipds_core.Checker.on_return c)
  done;
  let delta = Gc.minor_words () -. w0 in
  (* a few words of slack for the Gc.minor_words float boxes *)
  if delta > 64. then begin
    Printf.eprintf
      "checker-throughput FAIL: steady-state checked branch allocated \
       %.0f minor words over %d cycles (%s pc 0x%x)\n%!"
      delta iters fname pc;
    exit 1
  end;
  Printf.printf
    "zero-alloc probe: %d call/branch/return cycles through %s pc 0x%x: \
     %.0f minor words\n"
    iters fname pc delta;
  (fname, pc, iters, delta)

(* The per-branch hot path in isolation: one warm frame, millions of
   verify+update commits on a checked branch.  This is exactly the code
   the flat image replaces — per-branch allocation plus 3-4 atomic
   registry hits — so it is the headline speedup.  Peak of several
   windows, which is robust against scheduler preemption. *)
let branch_path_bench () =
  let w, (fname, pc, taken, bat_nodes) = microbench_candidate () in
  let system = W.system w in
  let windows = 15 and iters = 1_000_000 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f iters;
    let dt = Unix.gettimeofday () -. t0 in
    float_of_int iters /. (if dt <= 0. then 1e-9 else dt)
  in
  (* one warm frame per impl; each window consumes the verdict the way
     the interp does (an alarm test) *)
  let cf = Ipds_core.System.new_checker system in
  ignore (Ipds_core.Checker.on_call cf fname);
  let flat_alarms = ref 0 in
  let run_flat n =
    for _ = 1 to n do
      if
        Ipds_core.Checker.verdict_alarm
          (Ipds_core.Checker.on_branch cf ~pc ~taken)
      then incr flat_alarms
    done
  in
  let cr = Ipds_core.System.new_ref_checker system in
  ignore (Ipds_core.Checker_ref.on_call cr fname);
  let ref_alarms = ref 0 in
  let run_ref n =
    for _ = 1 to n do
      let i = Ipds_core.Checker_ref.on_branch cr ~pc ~taken in
      match i.Ipds_core.Checker_ref.alarm with
      | Some _ -> incr ref_alarms
      | None -> ()
    done
  in
  run_flat 10_000;
  run_ref 10_000;
  (* interleave the windows so a load spike on the (shared) host hits
     both implementations, not whichever happened to run second; take
     the per-impl peak *)
  let best_flat = ref 0. and best_ref = ref 0. in
  for _ = 1 to windows do
    let rf = time run_flat in
    if rf > !best_flat then best_flat := rf;
    let rr = time run_ref in
    if rr > !best_ref then best_ref := rr
  done;
  ignore (Sys.opaque_identity (!flat_alarms + !ref_alarms));
  ignore (Ipds_core.Checker.on_return cf);
  Ipds_core.Checker.flush cf;
  Ipds_core.Checker_ref.on_return cr;
  let flat_rate = !best_flat and ref_rate = !best_ref in
  let speedup = flat_rate /. ref_rate in
  Printf.printf
    "branch path (%s pc 0x%x, %d update nodes, peak of %d x %dk commits):\n\
    \  flat %10.0f branches/s (%5.2f ns)   ref %10.0f branches/s (%5.2f \
     ns)   speedup %5.2fx\n"
    fname pc bat_nodes windows (iters / 1000) flat_rate
    (1e9 /. flat_rate)
    ref_rate
    (1e9 /. ref_rate)
    speedup;
  (fname, pc, bat_nodes, flat_rate, ref_rate, speedup)

let checker_throughput ~reps ~seed ~out () =
  section
    (Printf.sprintf "Checker throughput: flat image vs reference (%d reps)" reps);
  let rows =
    List.map
      (fun w ->
        let system = W.system w in
        let r = record_events ~seed ~system w in
        (* enough rounds per rep that each measurement covers ~200k
           branches; the recorded traces themselves are short *)
        let rounds = max 1 (200_000 / max 1 r.r_branches) in
        let branches = rounds * r.r_branches in
        let flat =
          rate_stats ~reps ~branches (fun () -> replay_flat system r ~rounds)
        in
        let reference =
          rate_stats ~reps ~branches (fun () ->
              replay_reference system r ~rounds)
        in
        let speedup = if reference.mean > 0. then flat.mean /. reference.mean else 0. in
        Printf.printf
          "%-10s %7d branches  flat %10.0f/s (p50 %10.0f, p99 %10.0f)  ref \
           %10.0f/s  speedup %5.2fx\n"
          w.W.name r.r_branches flat.mean flat.p50 flat.p99 reference.mean
          speedup;
        (w.W.name, r, flat, reference, speedup))
      W.all
  in
  (* aggregate rate: total branches over total mean-rate time, per impl *)
  let total_branches =
    List.fold_left (fun acc (_, r, _, _, _) -> acc + r.r_branches) 0 rows
  in
  let total_time stat_of =
    List.fold_left
      (fun acc (_, r, flat, reference, _) ->
        let s : rate_stats = stat_of flat reference in
        acc +. (float_of_int r.r_branches /. s.mean))
      0. rows
  in
  let flat_rate = float_of_int total_branches /. total_time (fun f _ -> f) in
  let ref_rate = float_of_int total_branches /. total_time (fun _ r -> r) in
  let overall_speedup = flat_rate /. ref_rate in
  Printf.printf
    "OVERALL    %7d branches  flat %10.0f/s  ref %10.0f/s  speedup %5.2fx\n"
    total_branches flat_rate ref_rate overall_speedup;
  let bp_fn, bp_pc, bp_nodes, bp_flat, bp_ref, bp_speedup =
    branch_path_bench ()
  in
  let probe_fn, probe_pc, probe_iters, probe_delta = zero_alloc_probe () in
  let stats_json (s : rate_stats) =
    J.Obj
      [
        ("mean_branches_per_sec", J.Float s.mean);
        ("p50_branches_per_sec", J.Float s.p50);
        ("p99_branches_per_sec", J.Float s.p99);
      ]
  in
  let data =
    J.Obj
      [
        ("reps", J.Int reps);
        ( "workloads",
          J.List
            (List.map
               (fun (name, r, flat, reference, speedup) ->
                 J.Obj
                   [
                     ("workload", J.String name);
                     ("events", J.Int r.r_events);
                     ("branches", J.Int r.r_branches);
                     ("flat", stats_json flat);
                     ("reference", stats_json reference);
                     ("speedup", J.Float speedup);
                   ])
               rows) );
        ( "overall",
          J.Obj
            [
              ("branches", J.Int total_branches);
              ("flat_branches_per_sec", J.Float flat_rate);
              ("reference_branches_per_sec", J.Float ref_rate);
              ("speedup", J.Float overall_speedup);
            ] );
        ( "branch_path",
          J.Obj
            [
              ("function", J.String bp_fn);
              ("branch_pc", J.Int bp_pc);
              ("bat_nodes_per_commit", J.Int bp_nodes);
              ("flat_branches_per_sec", J.Float bp_flat);
              ("reference_branches_per_sec", J.Float bp_ref);
              ("flat_ns_per_branch", J.Float (1e9 /. bp_flat));
              ("reference_ns_per_branch", J.Float (1e9 /. bp_ref));
              ("speedup", J.Float bp_speedup);
            ] );
        ( "zero_alloc",
          J.Obj
            [
              ("function", J.String probe_fn);
              ("branch_pc", J.Int probe_pc);
              ("cycles", J.Int probe_iters);
              ("minor_words_delta", J.Float probe_delta);
            ] );
      ]
  in
  (match out with
  | None -> ()
  | Some path ->
      J.write_file path data;
      Printf.printf "wrote %s\n" path);
  data

(* ---------- precision: Fig-7 lift from feasible-path refinement ---------- *)

let precision_options =
  {
    Ipds_correlation.Analysis.default_options with
    Ipds_correlation.Analysis.precision = Ipds_correlation.Analysis.precision_on;
  }

(* Same campaign twice — default options, then with the refine pass on —
   and report the per-workload detection delta plus what the refinement
   actually did (obs counters) and what it cost (per-pass deltas). *)
let precision ~attacks ~seed ?pool ~out () =
  section
    (Printf.sprintf "Feasible-path refinement: detection lift (%d attacks/server)"
       attacks);
  let pass_snapshot () =
    List.map
      (fun (r : Ipds_pass.Pass.report_row) ->
        (r.Ipds_pass.Pass.r_name, (r.Ipds_pass.Pass.r_units, r.Ipds_pass.Pass.r_seconds)))
      (Ipds_pass.Pass.report ())
  in
  let pass_delta before after =
    List.filter_map
      (fun (name, (u1, s1)) ->
        let u0, s0 =
          match List.assoc_opt name before with Some v -> v | None -> (0, 0.)
        in
        if u1 = u0 && s1 -. s0 < 1e-9 then None
        else Some (name, u1 - u0, s1 -. s0))
      after
  in
  let refine_names =
    [ "refine.iterations"; "refine.edges_pruned"; "refine.correlations_gained" ]
  in
  let refine_snapshot () =
    List.map
      (fun n -> (n, Ipds_obs.Registry.counter_value (Ipds_obs.Registry.counter n)))
      refine_names
  in
  let p0 = pass_snapshot () in
  let off = H.Attack_experiment.run_all ~attacks ~seed ?pool () in
  let p1 = pass_snapshot () in
  let r0 = refine_snapshot () in
  let on =
    H.Attack_experiment.run_all ~options:precision_options ~attacks ~seed ?pool ()
  in
  let p2 = pass_snapshot () in
  let r1 = refine_snapshot () in
  let refine_counters =
    List.map2 (fun (n, v0) (_, v1) -> (n, v1 - v0)) r0 r1
  in
  let rows =
    List.map2
      (fun (o : H.Attack_experiment.row) (n : H.Attack_experiment.row) ->
        assert (String.equal o.workload n.workload);
        (o.workload, o.attacks, o.detected, n.detected))
      off.H.Attack_experiment.rows on.H.Attack_experiment.rows
  in
  let lifted =
    List.length (List.filter (fun (_, _, o, n) -> n > o) rows)
  in
  Printf.printf "%-12s %9s %9s %6s\n" "workload" "off" "on" "lift";
  List.iter
    (fun (w, attacks, o, n) ->
      Printf.printf "%-12s %5d/%-3d %5d/%-3d %+6d\n" w o attacks n attacks
        (n - o))
    rows;
  Printf.printf
    "detection lifted on %d/%d workloads; avg detected %.1f%% -> %.1f%%\n"
    lifted (List.length rows)
    (100. *. off.H.Attack_experiment.avg_detected)
    (100. *. on.H.Attack_experiment.avg_detected);
  List.iter (fun (n, v) -> Printf.printf "  %s: %d\n" n v) refine_counters;
  let cost_on = pass_delta p1 p2 in
  print_endline "per-pass cost of the precision build:";
  List.iter
    (fun (name, units, seconds) ->
      Printf.printf "  %-24s %6d units  %8.3fs\n" name units seconds)
    cost_on;
  (* per-function refinement stats: the systems are memoised, so this
     reuses the builds the on-campaign already did *)
  let fn_stats =
    List.concat_map
      (fun w ->
        let sys = W.system ~options:precision_options ?pool w in
        List.filter_map
          (fun (fname, (info : Ipds_core.System.func_info)) ->
            Option.map
              (fun s -> (w.W.name, fname, s))
              info.Ipds_core.System.refine)
          sys.Ipds_core.System.funcs)
      W.all
  in
  let hist =
    List.sort_uniq compare
      (List.map (fun (_, _, s) -> s.Ipds_correlation.Refine.iterations) fn_stats)
  in
  Printf.printf "iterations to fixpoint:%s\n"
    (String.concat ""
       (List.map
          (fun it ->
            let n =
              List.length
                (List.filter
                   (fun (_, _, s) ->
                     s.Ipds_correlation.Refine.iterations = it)
                   fn_stats)
            in
            Printf.sprintf "  %d iteration%s x %d functions"
              it (if it = 1 then "" else "s") n)
          hist));
  let pass_cost_json delta =
    J.List
      (List.map
         (fun (name, units, seconds) ->
           J.Obj
             [
               ("pass", J.String name);
               ("units", J.Int units);
               ("wall_seconds", J.Float seconds);
             ])
         delta)
  in
  let data =
    J.Obj
      [
        ("attacks", J.Int attacks);
        ("seed", J.Int seed);
        ("off", attack_summary_json off);
        ("on", attack_summary_json on);
        ( "lift",
          J.List
            (List.map
               (fun (w, attacks, o, n) ->
                 J.Obj
                   [
                     ("workload", J.String w);
                     ("attacks", J.Int attacks);
                     ("detected_off", J.Int o);
                     ("detected_on", J.Int n);
                     ("lift", J.Int (n - o));
                   ])
               rows) );
        ("workloads_lifted", J.Int lifted);
        ("refine", J.Obj (List.map (fun (n, v) -> (n, J.Int v)) refine_counters));
        ( "functions",
          J.List
            (List.map
               (fun (w, fname, (s : Ipds_correlation.Refine.stats)) ->
                 J.Obj
                   [
                     ("workload", J.String w);
                     ("function", J.String fname);
                     ("iterations", J.Int s.Ipds_correlation.Refine.iterations);
                     ("edges_pruned", J.Int s.Ipds_correlation.Refine.edges_pruned);
                     ( "total_directions",
                       J.Int s.Ipds_correlation.Refine.total_directions );
                     ( "correlations_before",
                       J.Int s.Ipds_correlation.Refine.correlations_before );
                     ( "correlations_after",
                       J.Int s.Ipds_correlation.Refine.correlations_after );
                   ])
               fn_stats) );
        ("pass_cost_off", pass_cost_json (pass_delta p0 p1));
        ("pass_cost_on", pass_cost_json cost_on);
      ]
  in
  (match out with
  | None -> ()
  | Some path ->
      J.write_file path data;
      Printf.printf "wrote %s\n" path);
  data

(* ---------- attacks: every universe, generated population, DME ---------- *)

let attacks_bench ~attacks ~seed ~universes ?pool ~out () =
  section
    (Printf.sprintf "Attack universes (%d attacks/server, universes: %s)"
       attacks (String.concat "," universes));
  let universes =
    List.map
      (fun name ->
        match H.Attack_experiment.universe_of_name name with
        | Some u -> u
        | None ->
            Printf.eprintf
              "unknown attack universe: %s (expected mem, cond-flip or \
               insn-skip)\n"
              name;
            exit 2)
      universes
  in
  let config =
    {
      H.Attack_bench.default_config with
      universes;
      attacks;
      seed;
      dme_attacks = attacks;
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = H.Attack_bench.run ~config ?pool () in
  let dt = Unix.gettimeofday () -. t0 in
  List.iter
    (fun (u, s) ->
      Printf.printf "\n-- workloads, universe %s --\n"
        (H.Attack_experiment.universe_name u);
      print_endline (H.Attack_experiment.render s))
    r.H.Attack_bench.workload_universes;
  Printf.printf "\n-- generated population: %d members (%d distinct), seed %d --\n"
    config.H.Attack_bench.pop_members r.H.Attack_bench.pop_distinct seed;
  List.iter
    (fun (u, s) ->
      Printf.printf "\n-- population, universe %s --\n"
        (H.Attack_experiment.universe_name u);
      print_endline (H.Attack_experiment.render s))
    r.H.Attack_bench.pop_universes;
  Printf.printf "\n-- DME baseline (%d attacks/server, %d holdout pairs) --\n"
    config.H.Attack_bench.dme_attacks config.H.Attack_bench.dme_holdout;
  print_endline (H.Dme_experiment.render r.H.Attack_bench.dme);
  let injected = H.Attack_bench.injected_total r in
  Printf.printf "campaign throughput: %d injected attacks in %.2fs (%.1f/s)\n"
    injected dt
    (float_of_int injected /. Float.max dt 1e-9);
  let data =
    J.Obj
      [
        (* byte-identical across --jobs values *)
        ("stable", H.Attack_bench.stable_json r);
        ( "throughput_unstable",
          J.Obj
            [
              ("wall_seconds", J.Float dt);
              ("injected_attacks", J.Int injected);
              ( "attacks_per_second",
                J.Float (float_of_int injected /. Float.max dt 1e-9) );
            ] );
      ]
  in
  (match out with
  | None -> ()
  | Some path ->
      J.write_file path data;
      Printf.printf "wrote %s\n" path);
  data

(* ---------- smoke: tiny campaign + the harness's own invariants ---------- *)

let smoke ~attacks ~seed ~jobs () =
  section
    (Printf.sprintf "Smoke: %d attacks/server, seed %d, jobs %d" attacks seed
       jobs);
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "SMOKE FAIL: %s\n%!" msg;
        exit 1)
      fmt
  in
  let parallel = H.Attack_experiment.run_all ~attacks ~seed ~jobs () in
  let sequential = H.Attack_experiment.run_all ~attacks ~seed ~jobs:1 () in
  if parallel <> sequential then
    fail "jobs=%d and jobs=1 summaries differ for the same seed" jobs;
  let workloads = List.length W.all in
  let compiles = W.compile_count () in
  let builds = Ipds_core.System.build_count () in
  (* Both run_alls used one configuration per workload; the caches must
     have collapsed them to exactly one compile and one build each. *)
  if compiles > workloads then
    fail "%d minic compiles for %d workload configurations" compiles workloads;
  if builds > workloads then
    fail "%d system builds for %d workload configurations" builds workloads;
  print_endline (H.Attack_experiment.render parallel);
  Printf.printf
    "smoke OK: deterministic across jobs; %d compiles / %d builds for %d \
     workloads\n"
    compiles builds workloads;
  J.Obj
    [
      ("summary", attack_summary_json parallel);
      ("compiles", J.Int compiles);
      ("builds", J.Int builds);
    ]

(* ---------- driver ---------- *)

type opts = {
  attacks : int option;  (* None: per-target historical default *)
  seed : int;
  jobs : int;
  json : string option;
  reps : int;  (* checker-throughput replay repetitions *)
  checker_out : string option;  (* checker-throughput report file *)
  serve_out : string option;  (* serve-throughput report file *)
  precision_out : string option;  (* precision-lift report file *)
  attacks_out : string option;  (* attack-universes report file *)
  universes : string list;  (* attack universes for the attacks target *)
}

let report = ref []  (* (target, wall seconds, data), reverse order *)

let timed name f =
  if Ipds_obs.Events.enabled () then
    Ipds_obs.Events.emit ~kind:"bench.phase_start"
      [ ("target", Ipds_obs.Json.String name) ];
  let t0 = Unix.gettimeofday () in
  let data = Ipds_obs.Span.time ("bench." ^ name) f in
  let dt = Unix.gettimeofday () -. t0 in
  if Ipds_obs.Events.enabled () then
    Ipds_obs.Events.emit ~kind:"bench.phase_end"
      [
        ("target", Ipds_obs.Json.String name);
        ("wall_seconds", Ipds_obs.Json.Float dt);
      ];
  report := (name, dt, data) :: !report

let run_target opts pool name =
  let att default = Option.value opts.attacks ~default in
  let seed = opts.seed in
  let go = timed name in
  match name with
  | "fig7" -> go (fig7 ~attacks:(att 100) ~seed ?pool)
  | "fig8" -> go fig8
  | "fig9" -> go (fig9 ?pool)
  | "table1" -> go table1
  | "latency" -> go (latency ?pool)
  | "compile-time" -> go compile_time
  | "ablation" -> go (ablation ~attacks:(att 40) ?pool)
  | "opt-levels" ->
      go (fun () ->
          section
            (Printf.sprintf
               "Optimization levels (paper: \"compiler optimizations can remove \
                some correlations\"; %d attacks/server)"
               (att 40));
          let rows = H.Opt_experiment.run_all ~attacks:(att 40) ~seed ?pool () in
          print_endline (H.Opt_experiment.render rows);
          J.List
            (List.map
               (fun (r : H.Opt_experiment.row) ->
                 J.Obj
                   [
                     ("level", J.String r.level);
                     ("avg_detected", J.Float r.avg_detected);
                     ("detected_given_cf", J.Float r.detected_given_cf);
                     ("avg_cf_changed", J.Float r.avg_cf_changed);
                     ("checked_branches", J.Int r.checked_branches);
                     ("total_branches", J.Int r.total_branches);
                   ])
               rows))
  | "baseline" -> go (baseline ~attacks:(att 100) ?pool)
  | "ctx" -> go ctx
  | "models" -> go (models ~attacks:(att 100) ?pool)
  | "micro" -> go micro
  | "serve-latency" -> go (serve_latency ~seed)
  | "serve-throughput" -> go (serve_throughput ~seed ~out:opts.serve_out)
  | "checker-throughput" ->
      go (checker_throughput ~reps:opts.reps ~seed ~out:opts.checker_out)
  | "precision" ->
      go (precision ~attacks:(att 100) ~seed ?pool ~out:opts.precision_out)
  | "attacks" ->
      go
        (attacks_bench ~attacks:(att 40) ~seed ~universes:opts.universes ?pool
           ~out:opts.attacks_out)
  | "smoke" -> go (smoke ~attacks:(att 5) ~seed ~jobs:opts.jobs)
  | other ->
      Printf.eprintf "unknown bench target: %s\n" other;
      exit 2

let default_targets =
  [
    "table1"; "fig8"; "fig7"; "fig9"; "latency"; "compile-time"; "ablation";
    "opt-levels"; "baseline"; "models"; "ctx"; "precision"; "attacks";
    "checker-throughput"; "serve-throughput";
  ]

let full_targets = default_targets @ [ "micro" ]

let cache_json () =
  match Ipds_artifact.Store.ambient () with
  | None -> J.Obj [ ("enabled", J.Bool false) ]
  | Some store ->
      let c = Ipds_artifact.Store.counters () in
      J.Obj
        [
          ("enabled", J.Bool true);
          ("dir", J.String (Ipds_artifact.Store.dir store));
          ("artifact_hits", J.Int c.Ipds_artifact.Store.hits);
          ("artifact_misses", J.Int c.Ipds_artifact.Store.misses);
          ("corrupt_entries", J.Int c.Ipds_artifact.Store.corrupt);
          ("fn_hits", J.Int c.Ipds_artifact.Store.fn_hits);
          ("fn_misses", J.Int c.Ipds_artifact.Store.fn_misses);
          ("fn_precision_misses", J.Int c.Ipds_artifact.Store.fn_precision_misses);
          ("fn_corrupt_entries", J.Int c.Ipds_artifact.Store.fn_corrupt);
          ("collisions", J.Int c.Ipds_artifact.Store.collisions);
          ("publish_failures", J.Int c.Ipds_artifact.Store.publish_failed);
          ("bytes_read", J.Int c.Ipds_artifact.Store.bytes_read);
          ("bytes_written", J.Int c.Ipds_artifact.Store.bytes_written);
          ("load_wall_seconds", J.Float c.Ipds_artifact.Store.load_seconds);
          ("store_wall_seconds", J.Float c.Ipds_artifact.Store.store_seconds);
        ]

let write_report opts ~targets ~total_seconds path =
  let tm = Unix.localtime (Unix.time ()) in
  let date =
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let phases =
    List.rev_map
      (fun (name, dt, data) ->
        J.Obj
          [ ("name", J.String name); ("wall_seconds", J.Float dt); ("data", data) ])
      !report
  in
  J.write_file path
    (J.Obj
       [
         ("date", J.String date);
         ("targets", J.List (List.map (fun t -> J.String t) targets));
         ( "attacks",
           match opts.attacks with Some n -> J.Int n | None -> J.Null );
         ("seed", J.Int opts.seed);
         ("jobs", J.Int opts.jobs);
         ("total_wall_seconds", J.Float total_seconds);
         ("minic_compiles", J.Int (W.compile_count ()));
         ("system_builds", J.Int (Ipds_core.System.build_count ()));
         ("cache", cache_json ());
         ("manifest", H.Obs_report.manifest_json ());
         (* deterministic: byte-identical across --jobs values *)
         ("metrics", H.Obs_report.metrics_json ());
         (* scheduling/wall-clock dependent: pool activity, span timers *)
         ("runtime_metrics", H.Obs_report.runtime_json ());
         ("phases", J.List phases);
       ]);
  Printf.printf "\nwrote %s\n" path

(* Hidden argv mode for serve-throughput: run one verdict server (the
   event-loop reactor or the thread-per-session baseline) in this
   process, print READY once it is listening, and stop when stdin hits
   EOF — the parent's pipe end is the child's lifetime. *)
let serve_child_main () =
  let impl = ref "reactor" in
  let sock = ref "" in
  let store = ref None in
  let jobs = ref 1 in
  let argc = Array.length Sys.argv in
  let rec parse i =
    if i < argc then begin
      (match
         (Sys.argv.(i), if i + 1 < argc then Some Sys.argv.(i + 1) else None)
       with
      | "--serve-impl", Some v -> impl := v
      | "--serve-socket", Some v -> sock := v
      | "--serve-store", Some v -> store := Some v
      | "--serve-jobs", Some v -> jobs := int_of_string v
      | a, _ ->
          Printf.eprintf "serve-child: bad argument %s\n" a;
          exit 2);
      parse (i + 2)
    end
  in
  parse 2;
  if String.equal !sock "" then begin
    prerr_endline "serve-child: --serve-socket is required";
    exit 2
  end;
  let stop =
    match !impl with
    | "reactor" ->
        let config =
          {
            Ipds_serve.Server.default_config with
            Ipds_serve.Server.jobs = max 1 !jobs;
            session_timeout = 0.;
            store_dir = !store;
          }
        in
        let t = Ipds_serve.Server.start ~config (`Unix !sock) in
        fun () -> Ipds_serve.Server.stop t
    | "threaded" ->
        let config =
          {
            Ipds_serve.Server_threaded.default_config with
            Ipds_serve.Server_threaded.jobs = max 1 !jobs;
            session_timeout = 0.;
            store_dir = !store;
          }
        in
        let t = Ipds_serve.Server_threaded.start ~config (`Unix !sock) in
        fun () -> Ipds_serve.Server_threaded.stop t
    | other ->
        Printf.eprintf "serve-child: unknown impl %s\n" other;
        exit 2
  in
  print_string "READY\n";
  flush stdout;
  let buf = Bytes.create 256 in
  let rec drain () =
    match Unix.read Unix.stdin buf 0 (Bytes.length buf) with
    | 0 -> ()
    | _ -> drain ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
  in
  drain ();
  stop ();
  exit 0

let () =
  if Array.length Sys.argv > 1 && String.equal Sys.argv.(1) "serve-child" then
    serve_child_main ();
  let attacks = ref None in
  let seed = ref 2006 in
  let jobs = ref (Pool.default_jobs ()) in
  let json = ref None in
  let reps = ref 5 in
  let checker_out = ref (Some "BENCH_checker.json") in
  let serve_out = ref (Some "BENCH_serve.json") in
  let precision_out = ref (Some "BENCH_precision.json") in
  let attacks_out = ref (Some "BENCH_attacks.json") in
  let universes = ref [ "mem"; "cond-flip"; "insn-skip" ] in
  let events = ref (Sys.getenv_opt "IPDS_EVENTS") in
  let targets_rev = ref [] in
  let spec =
    Arg.align
      [
        ( "--attacks",
          Arg.Int (fun n -> attacks := Some n),
          "N Attacks per server (default: per-target, 100 or 40)" );
        ("--seed", Arg.Set_int seed, "S Base PRNG seed (default 2006)");
        ( "--jobs",
          Arg.Set_int jobs,
          "N Worker domains (default: cores - 1 or IPDS_JOBS; 1 = sequential)" );
        ( "--json",
          Arg.String (fun f -> json := Some f),
          "FILE Write a machine-readable report" );
        ( "--reps",
          Arg.Set_int reps,
          "N Replay repetitions for checker-throughput (default 5)" );
        ( "--checker-out",
          Arg.String (fun f -> checker_out := Some f),
          "FILE Checker-throughput report (default BENCH_checker.json)" );
        ( "--serve-out",
          Arg.String (fun f -> serve_out := Some f),
          "FILE Serve-throughput report (default BENCH_serve.json)" );
        ( "--precision-out",
          Arg.String (fun f -> precision_out := Some f),
          "FILE Precision-lift report (default BENCH_precision.json)" );
        ( "--attacks-out",
          Arg.String (fun f -> attacks_out := Some f),
          "FILE Attack-universes report (default BENCH_attacks.json)" );
        ( "--universes",
          Arg.String
            (fun s -> universes := String.split_on_char ',' s),
          "LIST Comma-separated universes for the attacks target (default \
           mem,cond-flip,insn-skip)" );
        ( "--events",
          Arg.String (fun f -> events := Some f),
          "FILE Stream structured JSONL events (default: IPDS_EVENTS)" );
        ( "--cache-dir",
          Arg.String
            (fun d -> Ipds_artifact.Store.set_ambient_dir (Some d)),
          "DIR Load/publish prebuilt .ipds artifacts under DIR (default: \
           IPDS_CACHE_DIR)" );
        ( "--no-cache",
          Arg.Unit (fun () -> Ipds_artifact.Store.set_ambient_dir None),
          " Disable the artifact cache, ignoring IPDS_CACHE_DIR" );
      ]
  in
  let usage = "bench/main.exe [flags] [targets...]   (see source header)" in
  let argv =
    Array.of_list
      (Sys.executable_name
      :: List.filter
           (fun a -> not (String.equal a "--"))
           (List.tl (Array.to_list Sys.argv)))
  in
  (try Arg.parse_argv argv spec (fun t -> targets_rev := t :: !targets_rev) usage
   with
  | Arg.Bad msg ->
      prerr_string msg;
      exit 2
  | Arg.Help msg ->
      print_string msg;
      exit 0);
  let opts =
    {
      attacks = !attacks;
      seed = !seed;
      jobs = max 1 !jobs;
      json = !json;
      reps = max 1 !reps;
      checker_out = !checker_out;
      serve_out = !serve_out;
      precision_out = !precision_out;
      attacks_out = !attacks_out;
      universes = !universes;
    }
  in
  let targets =
    match List.rev !targets_rev with
    | [] -> default_targets
    | [ "full" ] -> full_targets
    | ts -> ts
  in
  (* the manifest must be complete before the event sink opens: the
     sink's first line embeds it *)
  let module Manifest = Ipds_obs.Manifest in
  Manifest.set_string "tool" "bench";
  Manifest.set_int "seed" opts.seed;
  Manifest.set_int "jobs" opts.jobs;
  Manifest.set "attacks"
    (match opts.attacks with
    | Some n -> Ipds_obs.Json.Int n
    | None -> Ipds_obs.Json.Null);
  Manifest.set "targets"
    (Ipds_obs.Json.List (List.map (fun t -> Ipds_obs.Json.String t) targets));
  Manifest.set_int "artifact_format_version" Ipds_artifact.Object_file.format_version;
  Ipds_obs.Events.set_path !events;
  let pool = if opts.jobs = 1 then None else Some (Pool.create ~jobs:opts.jobs ()) in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Pool.shutdown pool;
      Ipds_obs.Events.close ())
    (fun () -> List.iter (run_target opts pool) targets);
  let total_seconds = Unix.gettimeofday () -. t0 in
  (match Ipds_artifact.Store.ambient () with
  | None -> ()
  | Some store ->
      let c = Ipds_artifact.Store.counters () in
      Printf.printf
        "\nartifact cache %s: %d hits, %d misses (%d corrupt), fn tier %d \
         hits, %d misses (%d corrupt), %d KiB read, %d KiB written, load \
         %.3fs, store %.3fs\n"
        (Ipds_artifact.Store.dir store)
        c.Ipds_artifact.Store.hits c.Ipds_artifact.Store.misses
        c.Ipds_artifact.Store.corrupt c.Ipds_artifact.Store.fn_hits
        c.Ipds_artifact.Store.fn_misses c.Ipds_artifact.Store.fn_corrupt
        (c.Ipds_artifact.Store.bytes_read / 1024)
        (c.Ipds_artifact.Store.bytes_written / 1024)
        c.Ipds_artifact.Store.load_seconds c.Ipds_artifact.Store.store_seconds;
      (* faults are rare enough that a healthy run should print nothing *)
      if c.Ipds_artifact.Store.collisions > 0
         || c.Ipds_artifact.Store.publish_failed > 0
      then
        Printf.printf "artifact cache faults: %d collisions, %d failed publishes\n"
          c.Ipds_artifact.Store.collisions
          c.Ipds_artifact.Store.publish_failed);
  Option.iter (write_report opts ~targets ~total_seconds) opts.json
