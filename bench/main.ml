(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6), plus bechamel microbenchmarks of the compile-side and
   runtime-side machinery.

     dune exec bench/main.exe            -- everything (default sizes)
     dune exec bench/main.exe -- fig7    -- detection rates (Figure 7)
     dune exec bench/main.exe -- fig8    -- table sizes (Figure 8)
     dune exec bench/main.exe -- fig9    -- normalized performance (Figure 9)
     dune exec bench/main.exe -- table1  -- simulated processor parameters
     dune exec bench/main.exe -- latency -- detection latency (paper §6)
     dune exec bench/main.exe -- compile-time
     dune exec bench/main.exe -- ablation
     dune exec bench/main.exe -- micro   -- bechamel microbenchmarks
     dune exec bench/main.exe -- serve-latency -- verdict-server round trips
     dune exec bench/main.exe -- smoke   -- tiny campaign + invariant checks

   Flags (defaults preserve the historical sizes):

     --attacks N   attacks per server for the campaign experiments
     --seed S      base PRNG seed (default 2006)
     --jobs N      worker domains (default: recommended cores - 1, or
                   IPDS_JOBS; --jobs 1 is strictly sequential and
                   bit-identical to any other job count)
     --json FILE   write a machine-readable report of everything that
                   ran (rates, sizes, slowdown, latency, wall-clock per
                   phase, artifact-cache counters) — e.g.
                   --json BENCH_$(date +%F).json
     --cache-dir D two-tier artifact cache: load prebuilt .ipds objects
                   from D (populating it on misses) instead of
                   recompiling and re-analyzing; defaults to
                   IPDS_CACHE_DIR when set
     --no-cache    ignore IPDS_CACHE_DIR and run everything in memory
     --events F    stream structured JSONL events (manifest first line)
                   to F; defaults to IPDS_EVENTS when set

   The --json report embeds the run manifest plus two metric sections:
   "metrics" (stable counters/gauges/histograms — byte-identical across
   --jobs values) and "runtime_metrics" (pool utilisation and span
   timers, which legitimately vary). *)

module H = Ipds_harness
module W = Ipds_workloads.Workloads
module Pool = Ipds_parallel.Pool
module J = H.Json

let section title = Printf.printf "\n=== %s ===\n%!" title

(* ---------- experiment phases; each prints its table and returns the
   same numbers as JSON ---------- *)

let attack_summary_json (s : H.Attack_experiment.summary) =
  J.Obj
    [
      ( "rows",
        J.List
          (List.map
             (fun (r : H.Attack_experiment.row) ->
               J.Obj
                 [
                   ("workload", J.String r.workload);
                   ("attacks", J.Int r.attacks);
                   ("cf_changed", J.Int r.cf_changed);
                   ("detected", J.Int r.detected);
                 ])
             s.H.Attack_experiment.rows) );
      ("avg_cf_changed", J.Float s.H.Attack_experiment.avg_cf_changed);
      ("avg_detected", J.Float s.H.Attack_experiment.avg_detected);
      ("detected_given_cf", J.Float s.H.Attack_experiment.detected_given_cf);
    ]

let fig7 ~attacks ~seed ?pool () =
  section (Printf.sprintf "Figure 7: detection rate (%d attacks/server)" attacks);
  (* three independent campaigns: the first is the reported table, the
     spread across seeds quantifies sampling noise *)
  let seeds = if seed = 2006 then [ 2006; 7; 99 ] else [ seed; seed + 1; seed + 2 ] in
  let summaries =
    List.map (fun seed -> H.Attack_experiment.run_all ~attacks ~seed ?pool ()) seeds
  in
  let s = List.hd summaries in
  print_endline (H.Attack_experiment.render s);
  let series f = List.map f summaries in
  Printf.printf
    "across seeds: cf-changed %s, detected %s, detected|cf %s\n"
    (H.Stats.mean_sd (series (fun s -> s.H.Attack_experiment.avg_cf_changed)))
    (H.Stats.mean_sd (series (fun s -> s.H.Attack_experiment.avg_detected)))
    (H.Stats.mean_sd (series (fun s -> s.H.Attack_experiment.detected_given_cf)));
  print_endline
    "paper: 49.4% of tamperings change control flow; 29.3% detected overall; \
     59.3% of control-flow-changing detected";
  J.Obj
    (List.map2
       (fun seed s -> (Printf.sprintf "seed_%d" seed, attack_summary_json s))
       seeds summaries)

let fig8 () =
  section "Figure 8: average table sizes (bits)";
  let rows = H.Size_census.run_all () in
  print_endline (H.Size_census.render rows);
  print_endline "paper averages: BSV 34, BCV 17, BAT 393";
  J.List
    (List.map
       (fun (r : H.Size_census.row) ->
         J.Obj
           [
             ("workload", J.String r.workload);
             ("functions", J.Int r.functions);
             ("avg_bsv_bits", J.Float r.avg_bsv_bits);
             ("avg_bcv_bits", J.Float r.avg_bcv_bits);
             ("avg_bat_bits", J.Float r.avg_bat_bits);
           ])
       rows)

let perf_rows_json rows =
  J.List
    (List.map
       (fun (r : H.Perf_experiment.row) ->
         J.Obj
           [
             ("workload", J.String r.workload);
             ("instructions", J.Int r.instructions);
             ("base_cycles", J.Float r.base_cycles);
             ("ipds_cycles", J.Float r.ipds_cycles);
             ("normalized", J.Float r.normalized);
             ("avg_detection_latency", J.Float r.avg_detection_latency);
             ("spills", J.Int r.spills);
           ])
       rows)

let fig9 ?pool () =
  section "Figure 9: performance normalized to no-IPDS baseline";
  let rows = H.Perf_experiment.run_all ?pool () in
  print_endline (H.Perf_experiment.render rows);
  print_endline "paper: average degradation 0.79%";
  perf_rows_json rows

let table1 () =
  section "Table 1: simulated processor parameters";
  Format.printf "%a@." Ipds_pipeline.Config.pp Ipds_pipeline.Config.default;
  J.Null

let latency ?pool () =
  section "Detection latency (cycles from branch commit to IPDS verdict)";
  let rows = H.Perf_experiment.run_all ?pool () in
  List.iter
    (fun (r : H.Perf_experiment.row) ->
      Printf.printf "%-10s %6.1f cycles\n" r.workload r.avg_detection_latency)
    rows;
  let avg =
    H.Stats.mean
      (List.map (fun (r : H.Perf_experiment.row) -> r.avg_detection_latency) rows)
  in
  (match avg with
  | Some avg -> Printf.printf "AVERAGE    %6.1f cycles   (paper: 11.7)\n" avg
  | None -> print_endline "AVERAGE    n/a (no workloads ran)");
  J.Obj
    [
      ( "avg_detection_latency",
        match avg with Some avg -> J.Float avg | None -> J.Null );
      ( "per_workload",
        J.Obj
          (List.map
             (fun (r : H.Perf_experiment.row) ->
               (r.workload, J.Float r.avg_detection_latency))
             rows) );
    ]

let compile_time () =
  section "Compile time per benchmark (paper: up to a few seconds)";
  let rows, passes = H.Compile_time.run_all_with_passes () in
  print_endline (H.Compile_time.render rows);
  print_endline "Per-pass breakdown (pipeline order):";
  print_endline (H.Compile_time.render_passes passes);
  J.Obj
    [
      ( "per_workload",
        J.List
          (List.map
             (fun (r : H.Compile_time.row) ->
               J.Obj
                 [
                   ("workload", J.String r.workload);
                   ("seconds", J.Float r.seconds);
                   ("hash_attempts", J.Int r.hash_attempts);
                 ])
             rows) );
      (* pass names and unit counts are stable across --jobs; wall
         seconds are scheduling-dependent, hence the explicit suffix. *)
      ( "passes",
        J.List
          (List.map
             (fun (p : H.Compile_time.pass_row) ->
               J.Obj
                 [
                   ("name", J.String p.pass);
                   ("scope", J.String p.scope);
                   ("units", J.Int p.units);
                   ("wall_seconds_unstable", J.Float p.seconds);
                 ])
             passes) );
    ]

let ablation ~attacks ?pool () =
  section (Printf.sprintf "Ablation (%d attacks/server)" attacks);
  let rows = H.Ablation.run_all ~attacks ?pool () in
  print_endline (H.Ablation.render rows);
  J.List
    (List.map
       (fun (r : H.Ablation.row) ->
         J.Obj
           [
             ("variant", J.String r.label);
             ("avg_detected", J.Float r.avg_detected);
             ("detected_given_cf", J.Float r.detected_given_cf);
             ("checked_branches", J.Int r.checked_branches);
             ("avg_bat_bits", J.Float r.avg_bat_bits);
           ])
       rows)

let baseline ~attacks ?pool () =
  section
    (Printf.sprintf
       "Baseline comparison: 3-gram syscall-trace detector vs IPDS (%d \
        attacks/server)"
       attacks);
  let rows = H.Baseline_experiment.run_all ~attacks ?pool () in
  print_endline (H.Baseline_experiment.render rows);
  J.List
    (List.map
       (fun (r : H.Baseline_experiment.row) ->
         J.Obj
           [
             ("workload", J.String r.workload);
             ("ngram_fp", J.Float r.ngram_fp);
             ("ngram_detected", J.Int r.ngram_detected);
             ("ipds_detected", J.Int r.ipds_detected);
             ("cf_changed", J.Int r.cf_changed);
             ("attacks", J.Int r.attacks);
           ])
       rows)

let models ~attacks ?pool () =
  section
    (Printf.sprintf "Attack models (paper §3): overflow vs arbitrary write (%d \
                     attacks/server)" attacks);
  let rows = H.Model_experiment.run_all ~attacks ?pool () in
  print_endline (H.Model_experiment.render rows);
  J.List
    (List.map
       (fun (r : H.Model_experiment.row) ->
         J.Obj
           [
             ("workload", J.String r.workload);
             ("overflow_cf", J.Float r.overflow_cf);
             ("overflow_detected", J.Float r.overflow_detected);
             ("arbitrary_cf", J.Float r.arbitrary_cf);
             ("arbitrary_detected", J.Float r.arbitrary_detected);
           ])
       rows)

let ctx () =
  section "Context switches: save/restore cost vs switch period (sshd)";
  let rows = H.Ctx_experiment.run (W.find "sshd") in
  print_endline (H.Ctx_experiment.render rows);
  J.List
    (List.map
       (fun (r : H.Ctx_experiment.row) ->
         J.Obj
           [
             ("period_cycles", J.Int r.period_cycles);
             ("switches", J.Int r.switches);
             ("overhead", J.Float r.overhead);
           ])
       rows)

(* ---------- bechamel microbenchmarks ---------- *)

let micro () =
  section "Microbenchmarks (bechamel, ns/run)";
  let open Bechamel in
  let telnetd = W.find "telnetd" in
  let program = W.program telnetd in
  let system = Ipds_core.System.cached_build program in
  let estimates = ref [] in
  let tests =
    [
      Test.make ~name:"minic-compile:telnetd"
        (Staged.stage (fun () -> ignore (Ipds_minic.Minic.compile telnetd.W.source)));
      Test.make ~name:"analyze:telnetd"
        (Staged.stage (fun () ->
             ignore (Ipds_correlation.Analysis.analyze_program program)));
      Test.make ~name:"system-build:telnetd"
        (Staged.stage (fun () -> ignore (Ipds_core.System.build program)));
      Test.make ~name:"run+check:telnetd"
        (Staged.stage (fun () ->
             let checker = Ipds_core.System.new_checker system in
             ignore
               (Ipds_machine.Interp.run program
                  {
                    Ipds_machine.Interp.default_config with
                    inputs = Ipds_machine.Input_script.random ~seed:1 ();
                    checker = Some checker;
                    record_trace = false;
                  })));
      (let layout = system.Ipds_core.System.layout in
       let f = Ipds_mir.Program.find_func_exn program "main" in
       let pcs = Ipds_mir.Layout.branch_pcs layout f in
       Test.make ~name:"hash-search:telnetd-main"
         (Staged.stage (fun () -> ignore (Ipds_core.Hash.find pcs))));
    ]
  in
  List.iter
    (fun t ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ())
          Toolkit.Instance.[ monotonic_clock ]
          t
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) ->
              estimates := (name, est) :: !estimates;
              Printf.printf "%-28s %12.0f ns/run\n" name est
          | Some [] | None -> Printf.printf "%-28s (no estimate)\n" name)
        ols)
    tests;
  J.Obj (List.rev_map (fun (name, est) -> (name, J.Float est)) !estimates)

(* ---------- serve-latency: verdict-server round trips ---------- *)

let rec chunks n = function
  | [] -> []
  | xs ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: tl -> take (k - 1) (x :: acc) tl
      in
      let batch, rest = take n [] xs in
      batch :: chunks n rest

let percentile sorted p =
  match sorted with
  | [||] -> 0
  | a -> a.(min (Array.length a - 1) (p * Array.length a / 100))

let serve_latency ~seed () =
  section "Verdict-server latency (in-process server, Unix socket)";
  let module Serve = Ipds_serve in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ipds-bench-%d.sock" (Unix.getpid ()))
  in
  let w = W.find "telnetd" in
  let system = W.system w in
  let program = W.program w in
  (* Record the event stream once; every trace then replays the same
     batches, so the measurement is pure protocol + checking cost. *)
  let events = ref [] in
  ignore
    (Ipds_machine.Interp.run program
       {
         Ipds_machine.Interp.default_config with
         inputs = Ipds_machine.Input_script.random ~seed ();
         record_trace = false;
         sink =
           Some
             (fun (e : Ipds_machine.Event.t) ->
               match e.Ipds_machine.Event.kind with
               | Ipds_machine.Event.Call _ | Ipds_machine.Event.Ret
               | Ipds_machine.Event.Branch _ ->
                   events := e :: !events
               | _ -> ());
       });
  let batch_size = 256 in
  let batches = chunks batch_size (List.rev !events) in
  let n_events = List.length !events in
  let traces = 20 in
  let fail msg =
    Printf.eprintf "serve-latency: %s\n%!" msg;
    exit 1
  in
  let ok = function
    | Ok v -> v
    | Error (e : Serve.Protocol.err) -> fail e.Serve.Protocol.detail
  in
  let config = { Serve.Server.default_config with jobs = 2 } in
  let micros =
    Serve.Server.with_server ~config (`Unix sock) (fun _server ->
        let client = Serve.Client.connect (`Unix sock) in
        Fun.protect
          ~finally:(fun () -> Serve.Client.close client)
          (fun () ->
            ignore
              (ok
                 (Serve.Client.load_image client ~name:w.W.name
                    (Ipds_artifact.Artifact.to_bytes system)));
            let micros = ref [] in
            for _ = 1 to traces do
              ok (Serve.Client.begin_trace client);
              List.iter
                (fun batch ->
                  let t0 = Unix.gettimeofday () in
                  ignore (ok (Serve.Client.send_events client batch));
                  micros :=
                    int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)
                    :: !micros)
                batches;
              ignore (ok (Serve.Client.end_trace client))
            done;
            !micros))
  in
  let sorted = Array.of_list (List.sort compare micros) in
  let n = Array.length sorted in
  let sum = Array.fold_left ( + ) 0 sorted in
  let mean = if n = 0 then 0. else float_of_int sum /. float_of_int n in
  let p50 = percentile sorted 50
  and p95 = percentile sorted 95
  and p99 = percentile sorted 99 in
  let max_m = if n = 0 then 0 else sorted.(n - 1) in
  Printf.printf
    "%s: %d traces x %d events (%d batches of %d)\n\
     round-trip per batch: mean %.0f us, p50 %d us, p95 %d us, p99 %d us, \
     max %d us\n"
    w.W.name traces n_events (List.length batches) batch_size mean p50 p95 p99
    max_m;
  J.Obj
    [
      ("workload", J.String w.W.name);
      ("traces", J.Int traces);
      ("events_per_trace", J.Int n_events);
      ("batch_size", J.Int batch_size);
      ("batches_per_trace", J.Int (List.length batches));
      ("round_trips", J.Int n);
      ("mean_micros", J.Float mean);
      ("p50_micros", J.Int p50);
      ("p95_micros", J.Int p95);
      ("p99_micros", J.Int p99);
      ("max_micros", J.Int max_m);
    ]

(* ---------- smoke: tiny campaign + the harness's own invariants ---------- *)

let smoke ~attacks ~seed ~jobs () =
  section
    (Printf.sprintf "Smoke: %d attacks/server, seed %d, jobs %d" attacks seed
       jobs);
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "SMOKE FAIL: %s\n%!" msg;
        exit 1)
      fmt
  in
  let parallel = H.Attack_experiment.run_all ~attacks ~seed ~jobs () in
  let sequential = H.Attack_experiment.run_all ~attacks ~seed ~jobs:1 () in
  if parallel <> sequential then
    fail "jobs=%d and jobs=1 summaries differ for the same seed" jobs;
  let workloads = List.length W.all in
  let compiles = W.compile_count () in
  let builds = Ipds_core.System.build_count () in
  (* Both run_alls used one configuration per workload; the caches must
     have collapsed them to exactly one compile and one build each. *)
  if compiles > workloads then
    fail "%d minic compiles for %d workload configurations" compiles workloads;
  if builds > workloads then
    fail "%d system builds for %d workload configurations" builds workloads;
  print_endline (H.Attack_experiment.render parallel);
  Printf.printf
    "smoke OK: deterministic across jobs; %d compiles / %d builds for %d \
     workloads\n"
    compiles builds workloads;
  J.Obj
    [
      ("summary", attack_summary_json parallel);
      ("compiles", J.Int compiles);
      ("builds", J.Int builds);
    ]

(* ---------- driver ---------- *)

type opts = {
  attacks : int option;  (* None: per-target historical default *)
  seed : int;
  jobs : int;
  json : string option;
}

let report = ref []  (* (target, wall seconds, data), reverse order *)

let timed name f =
  if Ipds_obs.Events.enabled () then
    Ipds_obs.Events.emit ~kind:"bench.phase_start"
      [ ("target", Ipds_obs.Json.String name) ];
  let t0 = Unix.gettimeofday () in
  let data = Ipds_obs.Span.time ("bench." ^ name) f in
  let dt = Unix.gettimeofday () -. t0 in
  if Ipds_obs.Events.enabled () then
    Ipds_obs.Events.emit ~kind:"bench.phase_end"
      [
        ("target", Ipds_obs.Json.String name);
        ("wall_seconds", Ipds_obs.Json.Float dt);
      ];
  report := (name, dt, data) :: !report

let run_target opts pool name =
  let att default = Option.value opts.attacks ~default in
  let seed = opts.seed in
  let go = timed name in
  match name with
  | "fig7" -> go (fig7 ~attacks:(att 100) ~seed ?pool)
  | "fig8" -> go fig8
  | "fig9" -> go (fig9 ?pool)
  | "table1" -> go table1
  | "latency" -> go (latency ?pool)
  | "compile-time" -> go compile_time
  | "ablation" -> go (ablation ~attacks:(att 40) ?pool)
  | "opt-levels" ->
      go (fun () ->
          section
            (Printf.sprintf
               "Optimization levels (paper: \"compiler optimizations can remove \
                some correlations\"; %d attacks/server)"
               (att 40));
          let rows = H.Opt_experiment.run_all ~attacks:(att 40) ~seed ?pool () in
          print_endline (H.Opt_experiment.render rows);
          J.List
            (List.map
               (fun (r : H.Opt_experiment.row) ->
                 J.Obj
                   [
                     ("level", J.String r.level);
                     ("avg_detected", J.Float r.avg_detected);
                     ("detected_given_cf", J.Float r.detected_given_cf);
                     ("avg_cf_changed", J.Float r.avg_cf_changed);
                     ("checked_branches", J.Int r.checked_branches);
                     ("total_branches", J.Int r.total_branches);
                   ])
               rows))
  | "baseline" -> go (baseline ~attacks:(att 100) ?pool)
  | "ctx" -> go ctx
  | "models" -> go (models ~attacks:(att 100) ?pool)
  | "micro" -> go micro
  | "serve-latency" -> go (serve_latency ~seed)
  | "smoke" -> go (smoke ~attacks:(att 5) ~seed ~jobs:opts.jobs)
  | other ->
      Printf.eprintf "unknown bench target: %s\n" other;
      exit 2

let default_targets =
  [
    "table1"; "fig8"; "fig7"; "fig9"; "latency"; "compile-time"; "ablation";
    "opt-levels"; "baseline"; "models"; "ctx";
  ]

let full_targets = default_targets @ [ "micro" ]

let cache_json () =
  match Ipds_artifact.Store.ambient () with
  | None -> J.Obj [ ("enabled", J.Bool false) ]
  | Some store ->
      let c = Ipds_artifact.Store.counters () in
      J.Obj
        [
          ("enabled", J.Bool true);
          ("dir", J.String (Ipds_artifact.Store.dir store));
          ("artifact_hits", J.Int c.Ipds_artifact.Store.hits);
          ("artifact_misses", J.Int c.Ipds_artifact.Store.misses);
          ("corrupt_entries", J.Int c.Ipds_artifact.Store.corrupt);
          ("fn_hits", J.Int c.Ipds_artifact.Store.fn_hits);
          ("fn_misses", J.Int c.Ipds_artifact.Store.fn_misses);
          ("fn_corrupt_entries", J.Int c.Ipds_artifact.Store.fn_corrupt);
          ("bytes_read", J.Int c.Ipds_artifact.Store.bytes_read);
          ("bytes_written", J.Int c.Ipds_artifact.Store.bytes_written);
          ("load_wall_seconds", J.Float c.Ipds_artifact.Store.load_seconds);
          ("store_wall_seconds", J.Float c.Ipds_artifact.Store.store_seconds);
        ]

let write_report opts ~targets ~total_seconds path =
  let tm = Unix.localtime (Unix.time ()) in
  let date =
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let phases =
    List.rev_map
      (fun (name, dt, data) ->
        J.Obj
          [ ("name", J.String name); ("wall_seconds", J.Float dt); ("data", data) ])
      !report
  in
  J.write_file path
    (J.Obj
       [
         ("date", J.String date);
         ("targets", J.List (List.map (fun t -> J.String t) targets));
         ( "attacks",
           match opts.attacks with Some n -> J.Int n | None -> J.Null );
         ("seed", J.Int opts.seed);
         ("jobs", J.Int opts.jobs);
         ("total_wall_seconds", J.Float total_seconds);
         ("minic_compiles", J.Int (W.compile_count ()));
         ("system_builds", J.Int (Ipds_core.System.build_count ()));
         ("cache", cache_json ());
         ("manifest", H.Obs_report.manifest_json ());
         (* deterministic: byte-identical across --jobs values *)
         ("metrics", H.Obs_report.metrics_json ());
         (* scheduling/wall-clock dependent: pool activity, span timers *)
         ("runtime_metrics", H.Obs_report.runtime_json ());
         ("phases", J.List phases);
       ]);
  Printf.printf "\nwrote %s\n" path

let () =
  let attacks = ref None in
  let seed = ref 2006 in
  let jobs = ref (Pool.default_jobs ()) in
  let json = ref None in
  let events = ref (Sys.getenv_opt "IPDS_EVENTS") in
  let targets_rev = ref [] in
  let spec =
    Arg.align
      [
        ( "--attacks",
          Arg.Int (fun n -> attacks := Some n),
          "N Attacks per server (default: per-target, 100 or 40)" );
        ("--seed", Arg.Set_int seed, "S Base PRNG seed (default 2006)");
        ( "--jobs",
          Arg.Set_int jobs,
          "N Worker domains (default: cores - 1 or IPDS_JOBS; 1 = sequential)" );
        ( "--json",
          Arg.String (fun f -> json := Some f),
          "FILE Write a machine-readable report" );
        ( "--events",
          Arg.String (fun f -> events := Some f),
          "FILE Stream structured JSONL events (default: IPDS_EVENTS)" );
        ( "--cache-dir",
          Arg.String
            (fun d -> Ipds_artifact.Store.set_ambient_dir (Some d)),
          "DIR Load/publish prebuilt .ipds artifacts under DIR (default: \
           IPDS_CACHE_DIR)" );
        ( "--no-cache",
          Arg.Unit (fun () -> Ipds_artifact.Store.set_ambient_dir None),
          " Disable the artifact cache, ignoring IPDS_CACHE_DIR" );
      ]
  in
  let usage = "bench/main.exe [flags] [targets...]   (see source header)" in
  let argv =
    Array.of_list
      (Sys.executable_name
      :: List.filter
           (fun a -> not (String.equal a "--"))
           (List.tl (Array.to_list Sys.argv)))
  in
  (try Arg.parse_argv argv spec (fun t -> targets_rev := t :: !targets_rev) usage
   with
  | Arg.Bad msg ->
      prerr_string msg;
      exit 2
  | Arg.Help msg ->
      print_string msg;
      exit 0);
  let opts =
    { attacks = !attacks; seed = !seed; jobs = max 1 !jobs; json = !json }
  in
  let targets =
    match List.rev !targets_rev with
    | [] -> default_targets
    | [ "full" ] -> full_targets
    | ts -> ts
  in
  (* the manifest must be complete before the event sink opens: the
     sink's first line embeds it *)
  let module Manifest = Ipds_obs.Manifest in
  Manifest.set_string "tool" "bench";
  Manifest.set_int "seed" opts.seed;
  Manifest.set_int "jobs" opts.jobs;
  Manifest.set "attacks"
    (match opts.attacks with
    | Some n -> Ipds_obs.Json.Int n
    | None -> Ipds_obs.Json.Null);
  Manifest.set "targets"
    (Ipds_obs.Json.List (List.map (fun t -> Ipds_obs.Json.String t) targets));
  Manifest.set_int "artifact_format_version" Ipds_artifact.Object_file.format_version;
  Ipds_obs.Events.set_path !events;
  let pool = if opts.jobs = 1 then None else Some (Pool.create ~jobs:opts.jobs ()) in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Pool.shutdown pool;
      Ipds_obs.Events.close ())
    (fun () -> List.iter (run_target opts pool) targets);
  let total_seconds = Unix.gettimeofday () -. t0 in
  (match Ipds_artifact.Store.ambient () with
  | None -> ()
  | Some store ->
      let c = Ipds_artifact.Store.counters () in
      Printf.printf
        "\nartifact cache %s: %d hits, %d misses (%d corrupt), fn tier %d \
         hits, %d misses (%d corrupt), %d KiB read, %d KiB written, load \
         %.3fs, store %.3fs\n"
        (Ipds_artifact.Store.dir store)
        c.Ipds_artifact.Store.hits c.Ipds_artifact.Store.misses
        c.Ipds_artifact.Store.corrupt c.Ipds_artifact.Store.fn_hits
        c.Ipds_artifact.Store.fn_misses c.Ipds_artifact.Store.fn_corrupt
        (c.Ipds_artifact.Store.bytes_read / 1024)
        (c.Ipds_artifact.Store.bytes_written / 1024)
        c.Ipds_artifact.Store.load_seconds c.Ipds_artifact.Store.store_seconds);
  Option.iter (write_report opts ~targets ~total_seconds) opts.json
