(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6), plus bechamel microbenchmarks of the compile-side and
   runtime-side machinery.

     dune exec bench/main.exe            -- everything (default sizes)
     dune exec bench/main.exe -- fig7    -- detection rates (Figure 7)
     dune exec bench/main.exe -- fig8    -- table sizes (Figure 8)
     dune exec bench/main.exe -- fig9    -- normalized performance (Figure 9)
     dune exec bench/main.exe -- table1  -- simulated processor parameters
     dune exec bench/main.exe -- latency -- detection latency (paper §6)
     dune exec bench/main.exe -- compile-time
     dune exec bench/main.exe -- ablation
     dune exec bench/main.exe -- micro   -- bechamel microbenchmarks *)

module H = Ipds_harness
module W = Ipds_workloads.Workloads

let section title = Printf.printf "\n=== %s ===\n%!" title

let fig7 ~attacks () =
  section (Printf.sprintf "Figure 7: detection rate (%d attacks/server)" attacks);
  (* three independent campaigns: the first is the reported table, the
     spread across seeds quantifies sampling noise *)
  let summaries =
    List.map (fun seed -> H.Attack_experiment.run_all ~attacks ~seed ()) [ 2006; 7; 99 ]
  in
  let s = List.hd summaries in
  print_endline (H.Attack_experiment.render s);
  let series f = List.map f summaries in
  Printf.printf
    "across seeds: cf-changed %s, detected %s, detected|cf %s\n"
    (H.Stats.mean_sd (series (fun s -> s.H.Attack_experiment.avg_cf_changed)))
    (H.Stats.mean_sd (series (fun s -> s.H.Attack_experiment.avg_detected)))
    (H.Stats.mean_sd (series (fun s -> s.H.Attack_experiment.detected_given_cf)));
  print_endline
    "paper: 49.4% of tamperings change control flow; 29.3% detected overall; \
     59.3% of control-flow-changing detected"

let fig8 () =
  section "Figure 8: average table sizes (bits)";
  print_endline (H.Size_census.render (H.Size_census.run_all ()));
  print_endline "paper averages: BSV 34, BCV 17, BAT 393"

let fig9 () =
  section "Figure 9: performance normalized to no-IPDS baseline";
  print_endline (H.Perf_experiment.render (H.Perf_experiment.run_all ()));
  print_endline "paper: average degradation 0.79%"

let table1 () =
  section "Table 1: simulated processor parameters";
  Format.printf "%a@." Ipds_pipeline.Config.pp Ipds_pipeline.Config.default

let latency () =
  section "Detection latency (cycles from branch commit to IPDS verdict)";
  let rows = H.Perf_experiment.run_all () in
  List.iter
    (fun (r : H.Perf_experiment.row) ->
      Printf.printf "%-10s %6.1f cycles\n" r.workload r.avg_detection_latency)
    rows;
  let avg =
    List.fold_left
      (fun a (r : H.Perf_experiment.row) -> a +. r.avg_detection_latency)
      0. rows
    /. float_of_int (max 1 (List.length rows))
  in
  Printf.printf "AVERAGE    %6.1f cycles   (paper: 11.7)\n" avg

let compile_time () =
  section "Compile time per benchmark (paper: up to a few seconds)";
  print_endline (H.Compile_time.render (H.Compile_time.run_all ()))

let ablation ~attacks () =
  section (Printf.sprintf "Ablation (%d attacks/server)" attacks);
  print_endline (H.Ablation.render (H.Ablation.run_all ~attacks ()))

let baseline ~attacks () =
  section
    (Printf.sprintf
       "Baseline comparison: 3-gram syscall-trace detector vs IPDS (%d \
        attacks/server)"
       attacks);
  print_endline
    (H.Baseline_experiment.render (H.Baseline_experiment.run_all ~attacks ()))

let models ~attacks () =
  section
    (Printf.sprintf "Attack models (paper §3): overflow vs arbitrary write (%d \
                     attacks/server)" attacks);
  print_endline (H.Model_experiment.render (H.Model_experiment.run_all ~attacks ()))

let ctx () =
  section "Context switches: save/restore cost vs switch period (sshd)";
  print_endline
    (H.Ctx_experiment.render (H.Ctx_experiment.run (W.find "sshd")))

let opt_levels ~attacks () =
  section
    (Printf.sprintf
       "Optimization levels (paper: \"compiler optimizations can remove some \
        correlations\"; %d attacks/server)"
       attacks);
  print_endline (H.Opt_experiment.render (H.Opt_experiment.run_all ~attacks ()))

(* ---------- bechamel microbenchmarks ---------- *)

let micro () =
  section "Microbenchmarks (bechamel, ns/run)";
  let open Bechamel in
  let telnetd = W.find "telnetd" in
  let program = W.program telnetd in
  let system = Ipds_core.System.build program in
  let tests =
    [
      Test.make ~name:"minic-compile:telnetd"
        (Staged.stage (fun () -> ignore (Ipds_minic.Minic.compile telnetd.W.source)));
      Test.make ~name:"analyze:telnetd"
        (Staged.stage (fun () ->
             ignore (Ipds_correlation.Analysis.analyze_program program)));
      Test.make ~name:"system-build:telnetd"
        (Staged.stage (fun () -> ignore (Ipds_core.System.build program)));
      Test.make ~name:"run+check:telnetd"
        (Staged.stage (fun () ->
             let checker = Ipds_core.System.new_checker system in
             ignore
               (Ipds_machine.Interp.run program
                  {
                    Ipds_machine.Interp.default_config with
                    inputs = Ipds_machine.Input_script.random ~seed:1 ();
                    checker = Some checker;
                    record_trace = false;
                  })));
      (let layout = system.Ipds_core.System.layout in
       let f = Ipds_mir.Program.find_func_exn program "main" in
       let pcs = Ipds_mir.Layout.branch_pcs layout f in
       Test.make ~name:"hash-search:telnetd-main"
         (Staged.stage (fun () -> ignore (Ipds_core.Hash.find pcs))));
    ]
  in
  List.iter
    (fun t ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ())
          Toolkit.Instance.[ monotonic_clock ]
          t
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> Printf.printf "%-28s %12.0f ns/run\n" name est
          | Some [] | None -> Printf.printf "%-28s (no estimate)\n" name)
        ols)
    tests

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> not (String.equal a "--")) args in
  match args with
  | [] ->
      table1 ();
      fig8 ();
      fig7 ~attacks:100 ();
      fig9 ();
      latency ();
      compile_time ();
      ablation ~attacks:40 ();
      opt_levels ~attacks:40 ();
      baseline ~attacks:40 ();
      models ~attacks:40 ();
      ctx ()
  | [ "fig7" ] -> fig7 ~attacks:100 ()
  | [ "fig8" ] -> fig8 ()
  | [ "fig9" ] -> fig9 ()
  | [ "table1" ] -> table1 ()
  | [ "latency" ] -> latency ()
  | [ "compile-time" ] -> compile_time ()
  | [ "ablation" ] -> ablation ~attacks:40 ()
  | [ "opt-levels" ] -> opt_levels ~attacks:40 ()
  | [ "baseline" ] -> baseline ~attacks:100 ()
  | [ "ctx" ] -> ctx ()
  | [ "models" ] -> models ~attacks:100 ()
  | [ "micro" ] -> micro ()
  | [ "full" ] ->
      table1 ();
      fig8 ();
      fig7 ~attacks:100 ();
      fig9 ();
      latency ();
      compile_time ();
      ablation ~attacks:100 ();
      opt_levels ~attacks:100 ();
      baseline ~attacks:100 ();
      models ~attacks:100 ();
      ctx ();
      micro ()
  | other ->
      Printf.eprintf "unknown bench target: %s\n" (String.concat " " other);
      exit 2
